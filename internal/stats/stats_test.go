package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %g/%g, want 1/5", s.Min, s.Max)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %g, want 3", s.Mean)
	}
	if s.P50 != 3 {
		t.Errorf("p50 = %g, want 3", s.P50)
	}
	wantStd := math.Sqrt(2)
	if math.Abs(s.Stddev-wantStd) > 1e-9 {
		t.Errorf("stddev = %g, want %g", s.Stddev, wantStd)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	str := s.String()
	if !strings.Contains(str, "n=2") || !strings.Contains(str, "mean=1.5") {
		t.Errorf("unexpected summary string %q", str)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{1, 40},
		{-0.5, 10},
		{1.5, 40},
		{0.5, 25}, // interpolated between 20 and 30
		{1.0 / 3, 20},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v, %g) = %g, want %g", sorted, tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
}

// TestPercentileDefensive covers the inputs that violated the historical
// "already sorted, NaN-free" contract: Percentile used to interpolate over
// garbage ranks silently; it must now sort/strip defensively.
func TestPercentileDefensive(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name string
		in   []float64
		p    float64
		want float64
	}{
		{"empty nil", nil, 0.5, 0},
		{"empty slice", []float64{}, 0.9, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single p0", []float64{7}, 0, 7},
		{"single p1", []float64{7}, 1, 7},
		{"unsorted median", []float64{30, 10, 40, 20}, 0.5, 25},
		{"unsorted min", []float64{5, 1, 3}, 0, 1},
		{"unsorted max", []float64{5, 1, 3}, 1, 5},
		{"reverse sorted", []float64{4, 3, 2, 1}, 0.5, 2.5},
		{"nan stripped", []float64{nan, 10, 20, nan, 30, 40}, 0.5, 25},
		{"nan only", []float64{nan, nan}, 0.5, 0},
		{"nan plus single", []float64{nan, 9}, 0.5, 9},
		{"sorted fast path", []float64{10, 20, 30, 40}, 0.5, 25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Percentile(tt.in, tt.p)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("Percentile(%v, %g) = %g, want %g", tt.in, tt.p, got, tt.want)
			}
		})
	}
}

// The defensive path must not mutate the caller's sample.
func TestPercentileDoesNotMutateUnsortedInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestIsSortedClean(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		in   []float64
		want bool
	}{
		{nil, true},
		{[]float64{1}, true},
		{[]float64{1, 1, 2}, true},
		{[]float64{2, 1}, false},
		{[]float64{nan}, false},
		{[]float64{1, nan, 2}, false},
	}
	for _, tt := range tests {
		if got := isSortedClean(tt.in); got != tt.want {
			t.Errorf("isSortedClean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestPercentileMonotoneQuick: p1 ≤ p2 implies percentile(p1) ≤
// percentile(p2).
func TestPercentileMonotoneQuick(t *testing.T) {
	prop := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		p1 := math.Mod(math.Abs(a), 1)
		p2 := math.Mod(math.Abs(b), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(sorted, p1) <= Percentile(sorted, p2)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxInt(t *testing.T) {
	tests := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 5},
		{[]int{-3, -7}, -3},
		{[]int{1, 9, 2}, 9},
	}
	for _, tt := range tests {
		if got := MaxInt(tt.in); got != tt.want {
			t.Errorf("MaxInt(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMeanInt(t *testing.T) {
	if got := MeanInt(nil); got != 0 {
		t.Errorf("MeanInt(nil) = %g, want 0", got)
	}
	if got := MeanInt([]int{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("MeanInt = %g, want 2.5", got)
	}
}

func TestFloats(t *testing.T) {
	fs := Floats([]int{1, 2})
	if len(fs) != 2 || fs[0] != 1.0 || fs[1] != 2.0 {
		t.Errorf("Floats = %v", fs)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit := LinearFit(xs, ys)
	if math.Abs(fit.Slope-3) > 1e-9 || math.Abs(fit.Intercept-7) > 1e-9 {
		t.Errorf("fit = %+v, want slope 3 intercept 7", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R² = %g, want ≈1", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if fit := LinearFit([]float64{1}, []float64{2}); fit != (Fit{}) {
		t.Errorf("single-point fit = %+v, want zero", fit)
	}
	if fit := LinearFit([]float64{1, 2}, []float64{3}); fit != (Fit{}) {
		t.Errorf("mismatched-length fit = %+v, want zero", fit)
	}
	if fit := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); fit != (Fit{}) {
		t.Errorf("vertical-line fit = %+v, want zero", fit)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if math.Abs(fit.Slope) > 1e-9 {
		t.Errorf("slope = %g, want 0", fit.Slope)
	}
	if fit.R2 != 1 {
		t.Errorf("R² = %g, want 1 for perfectly explained constant", fit.R2)
	}
}

// TestLinearFitRecoversLineQuick: fitting points generated from any
// non-degenerate line recovers its parameters.
func TestLinearFitRecoversLineQuick(t *testing.T) {
	prop := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw)
		intercept := float64(interceptRaw)
		xs := []float64{0, 1, 2, 5, 10}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = slope*x + intercept
		}
		fit := LinearFit(xs, ys)
		return math.Abs(fit.Slope-slope) < 1e-6 && math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{1, 1, 3, 0})
	if h[1] != 2 || h[3] != 1 || h[0] != 1 || len(h) != 3 {
		t.Errorf("Histogram = %v", h)
	}
	if s := HistogramString(h); s != "0:1 1:2 3:1" {
		t.Errorf("HistogramString = %q", s)
	}
	if s := HistogramString(nil); s != "" {
		t.Errorf("HistogramString(nil) = %q", s)
	}
}

// Large-offset regression: samples 1e9+{0,1,2} have population stddev
// √(2/3) ≈ 0.8165. The old sumSq/n − mean² formula loses every significant
// digit of the variance to catastrophic cancellation at this magnitude
// (float64 keeps ~16 digits; squaring 1e9 burns all of them), typically
// returning 0. Welford's single-pass update keeps full precision.
func TestSummarizeLargeOffsetStddev(t *testing.T) {
	xs := []float64{1e9, 1e9 + 1, 1e9 + 2}
	s := Summarize(xs)
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Stddev-want) > 1e-9 {
		t.Fatalf("Stddev = %v, want %v (catastrophic cancellation?)", s.Stddev, want)
	}
	if s.Mean != 1e9+1 {
		t.Fatalf("Mean = %v, want %v", s.Mean, 1e9+1)
	}
}

// The small-magnitude path must agree with the direct two-pass formula.
func TestSummarizeStddevMatchesTwoPass(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if want := 2.0; math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", s.Stddev, want)
	}
}
