// Package stats provides small summary-statistics helpers used by the
// experiment harness: means, percentiles, extrema, histograms, and a simple
// least-squares linear fit for checking growth shapes (e.g. that Algorithm 2
// scales linearly in n while Algorithm 3 does not).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample of non-negative measurements.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	// Welford's single-pass update: the sumSq/n - mean² form loses all
	// precision to cancellation when the spread is small relative to the
	// magnitude (e.g. samples near 1e9).
	var mean, m2 float64
	for i, x := range sorted {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	variance := m2 / float64(len(sorted))
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		P50:    Percentile(sorted, 0.50),
		P90:    Percentile(sorted, 0.90),
		P99:    Percentile(sorted, 0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.N, s.Min, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Percentile returns the p-th percentile (0 <= p <= 1) of a sample by
// linear interpolation between the two nearest ranks. It returns 0 for an
// empty (or all-NaN) sample.
//
// The sample is expected sorted — the historical contract, which every
// internal caller satisfies — but Percentile now validates instead of
// silently trusting it: an unsorted or NaN-bearing sample is defensively
// copied, stripped of NaNs, and sorted, so the result is always the true
// percentile rather than interpolation over garbage ranks. The fast path
// (sorted, NaN-free) allocates nothing.
func Percentile(sorted []float64, p float64) float64 {
	if !isSortedClean(sorted) {
		clean := make([]float64, 0, len(sorted))
		for _, x := range sorted {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		sort.Float64s(clean)
		sorted = clean
	}
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// isSortedClean reports whether xs is ascending and NaN-free — the
// precondition under which Percentile may interpolate in place.
func isSortedClean(xs []float64) bool {
	for i, x := range xs {
		if math.IsNaN(x) || (i > 0 && x < xs[i-1]) {
			return false
		}
	}
	return true
}

// MaxInt returns the maximum of xs, or 0 if xs is empty.
func MaxInt(xs []int) int {
	max := 0
	for i, x := range xs {
		if i == 0 || x > max {
			max = x
		}
	}
	return max
}

// MeanInt returns the arithmetic mean of xs, or 0 if xs is empty.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Floats converts an int sample to float64 for Summarize.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fit is a least-squares line y = Slope*x + Intercept with the coefficient
// of determination R2.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line through the points (xs[i], ys[i]).
// It returns a zero Fit when fewer than two points are supplied or when all
// xs coincide.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{}
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// Histogram counts xs into width-1 integer buckets keyed by value.
func Histogram(xs []int) map[int]int {
	h := make(map[int]int, len(xs))
	for _, x := range xs {
		h[x]++
	}
	return h
}

// HistogramString renders a histogram in ascending key order, e.g.
// "0:3 1:5 4:1".
func HistogramString(h map[int]int) string {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, h[k])
	}
	return strings.Join(parts, " ")
}
