// Package metrics provides the stdlib-only observability primitives of the
// execution stack: lock-free counters and gauges that the engine, the model
// checker, and the experiment harness publish into while running, plus an
// atomic snapshot API that turns them into a consistent progress report —
// states per second, frontier depth, visited-set size, hash collisions,
// sweep cells completed, per-worker utilization.
//
// Publishing is optional everywhere: every layer takes a nil-able *Run and
// pays a single pointer comparison when metrics are off, so the un-budgeted
// deterministic hot paths are unaffected.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value (or running-maximum) gauge.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// WorkerStats tracks per-worker busy time and item counts for a worker
// pool, from which Snapshot derives utilization.
type WorkerStats struct {
	busy  []atomic.Int64 // nanoseconds spent inside work items
	items []atomic.Int64
}

// NewWorkerStats returns stats for n workers.
func NewWorkerStats(n int) *WorkerStats {
	return &WorkerStats{busy: make([]atomic.Int64, n), items: make([]atomic.Int64, n)}
}

// Record charges one finished item of the given duration to a worker.
// Safe on a nil receiver and out-of-range workers (both no-ops).
func (w *WorkerStats) Record(worker int, d time.Duration) {
	if w == nil || worker < 0 || worker >= len(w.busy) {
		return
	}
	w.busy[worker].Add(int64(d))
	w.items[worker].Add(1)
}

// N returns the worker count (0 for nil).
func (w *WorkerStats) N() int {
	if w == nil {
		return 0
	}
	return len(w.busy)
}

// Run is one run's metric set. All fields may be written concurrently;
// Snapshot reads them atomically field by field (the snapshot is a
// consistent progress report, not a linearizable cut).
type Run struct {
	start atomic.Int64 // unix nanos at NewRun

	// Model-checker metrics.
	States         Counter // distinct configurations visited
	Terminal       Counter // terminal configurations found
	FrontierDepth  Gauge   // deepest schedule prefix reached
	VisitedSize    Gauge   // live entries across visited tables
	HashCollisions Counter // lane-A collisions detected

	// Engine metrics.
	Steps       Counter // time steps executed
	Activations Counter // process rounds performed

	// Harness metrics.
	CellsDone  Counter // sweep cells completed
	CellsTotal Counter // sweep cells enumerated (monotone across experiments)

	// Fuzzing metrics.
	Schedules   Counter // fuzz schedules executed to completion
	ShrinkIters Counter // witness-shrinking replay attempts

	workers atomic.Pointer[WorkerStats]
}

// NewRun returns a Run stamped with the current time (the states/sec
// denominator).
func NewRun() *Run {
	r := &Run{}
	r.start.Store(time.Now().UnixNano())
	return r
}

// SetWorkers installs (and returns) per-worker stats for n workers.
func (r *Run) SetWorkers(n int) *WorkerStats {
	ws := NewWorkerStats(n)
	r.workers.Store(ws)
	return ws
}

// Workers returns the installed per-worker stats, or nil.
func (r *Run) Workers() *WorkerStats { return r.workers.Load() }

// Snapshot is a point-in-time view of a Run, JSON-marshalable for
// -metrics-json style outputs.
type Snapshot struct {
	ElapsedSeconds    float64   `json:"elapsed_seconds"`
	States            int64     `json:"states"`
	StatesPerSec      float64   `json:"states_per_sec"`
	Terminal          int64     `json:"terminal"`
	FrontierDepth     int64     `json:"frontier_depth"`
	VisitedSize       int64     `json:"visited_size"`
	HashCollisions    int64     `json:"hash_collisions"`
	Steps             int64     `json:"steps"`
	Activations       int64     `json:"activations"`
	CellsDone         int64     `json:"cells_done"`
	CellsTotal        int64     `json:"cells_total"`
	Schedules         int64     `json:"schedules"`
	ShrinkIters       int64     `json:"shrink_iters"`
	WorkerItems       []int64   `json:"worker_items,omitempty"`
	WorkerUtilization []float64 `json:"worker_utilization,omitempty"`
}

// Snapshot captures the current values. Safe on a nil receiver (returns a
// zero Snapshot).
func (r *Run) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	elapsed := time.Duration(time.Now().UnixNano() - r.start.Load())
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	s := Snapshot{
		ElapsedSeconds: elapsed.Seconds(),
		States:         r.States.Load(),
		Terminal:       r.Terminal.Load(),
		FrontierDepth:  r.FrontierDepth.Load(),
		VisitedSize:    r.VisitedSize.Load(),
		HashCollisions: r.HashCollisions.Load(),
		Steps:          r.Steps.Load(),
		Activations:    r.Activations.Load(),
		CellsDone:      r.CellsDone.Load(),
		CellsTotal:     r.CellsTotal.Load(),
		Schedules:      r.Schedules.Load(),
		ShrinkIters:    r.ShrinkIters.Load(),
	}
	s.StatesPerSec = float64(s.States) / elapsed.Seconds()
	if ws := r.Workers(); ws != nil {
		s.WorkerItems = make([]int64, len(ws.items))
		s.WorkerUtilization = make([]float64, len(ws.busy))
		for i := range ws.items {
			s.WorkerItems[i] = ws.items[i].Load()
			s.WorkerUtilization[i] = float64(ws.busy[i].Load()) / float64(elapsed)
		}
	}
	return s
}

// String renders the snapshot as the one-line progress status printed to
// stderr by the -progress flags.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%.1fs states=%d (%.0f/s) depth=%d visited=%d collisions=%d steps=%d acts=%d",
		s.ElapsedSeconds, s.States, s.StatesPerSec, s.FrontierDepth, s.VisitedSize,
		s.HashCollisions, s.Steps, s.Activations)
	if s.CellsTotal > 0 {
		fmt.Fprintf(&b, " cells=%d/%d", s.CellsDone, s.CellsTotal)
	}
	if s.Schedules > 0 {
		fmt.Fprintf(&b, " schedules=%d shrink=%d", s.Schedules, s.ShrinkIters)
	}
	if len(s.WorkerUtilization) > 0 {
		min, max := s.WorkerUtilization[0], s.WorkerUtilization[0]
		for _, u := range s.WorkerUtilization[1:] {
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		fmt.Fprintf(&b, " workers=%d util=%.0f%%–%.0f%%", len(s.WorkerUtilization), 100*min, 100*max)
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal snapshot: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// StartProgress spawns a goroutine printing r.Snapshot() to w every
// interval, prefixed with "progress: ". The returned stop function halts
// the ticker, prints one final line, and waits for the goroutine to exit.
// It is idempotent: calling it again — the natural thing to do from both a
// defer and a signal handler — is a no-op, not a close-of-closed-channel
// panic. interval <= 0 defaults to one second.
func StartProgress(w io.Writer, interval time.Duration, r *Run) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintf(w, "progress: %s\n", r.Snapshot())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			fmt.Fprintf(w, "progress: %s (final)\n", r.Snapshot())
		})
	}
}
