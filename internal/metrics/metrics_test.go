package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(w*1000 + i))
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
	if g.Load() != 7999 {
		t.Errorf("max gauge = %d, want 7999", g.Load())
	}
	g.Set(5)
	g.SetMax(3) // lower: must not move
	if g.Load() != 5 {
		t.Errorf("SetMax lowered the gauge to %d", g.Load())
	}
}

func TestRunSnapshot(t *testing.T) {
	r := NewRun()
	r.States.Add(100)
	r.Terminal.Add(7)
	r.FrontierDepth.SetMax(13)
	r.VisitedSize.Set(100)
	r.Steps.Add(42)
	r.Activations.Add(84)
	r.CellsTotal.Add(10)
	r.CellsDone.Add(4)
	ws := r.SetWorkers(2)
	ws.Record(0, time.Millisecond)
	ws.Record(1, 2*time.Millisecond)
	ws.Record(99, time.Hour) // out of range: ignored
	(*WorkerStats)(nil).Record(0, time.Hour)

	s := r.Snapshot()
	if s.States != 100 || s.Terminal != 7 || s.FrontierDepth != 13 || s.Steps != 42 ||
		s.Activations != 84 || s.CellsDone != 4 || s.CellsTotal != 10 {
		t.Errorf("snapshot fields wrong: %+v", s)
	}
	if s.StatesPerSec <= 0 {
		t.Errorf("states/sec = %v, want positive", s.StatesPerSec)
	}
	if len(s.WorkerItems) != 2 || s.WorkerItems[0] != 1 || s.WorkerItems[1] != 1 {
		t.Errorf("worker items = %v", s.WorkerItems)
	}
	if len(s.WorkerUtilization) != 2 || s.WorkerUtilization[1] <= 0 {
		t.Errorf("worker utilization = %v", s.WorkerUtilization)
	}

	line := s.String()
	for _, frag := range []string{"states=100", "cells=4/10", "workers=2"} {
		if !strings.Contains(line, frag) {
			t.Errorf("progress line %q missing %q", line, frag)
		}
	}
}

func TestNilRunSnapshot(t *testing.T) {
	var r *Run
	if s := r.Snapshot(); s.States != 0 || s.CellsTotal != 0 {
		t.Errorf("nil Run snapshot not zero: %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRun()
	r.States.Add(5)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	if back.States != 5 {
		t.Errorf("round-tripped states = %d, want 5", back.States)
	}
}

func TestStartProgress(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	r := NewRun()
	r.States.Add(3)
	stop := StartProgress(w, 5*time.Millisecond, r)
	time.Sleep(30 * time.Millisecond)
	stop()
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: ") || !strings.Contains(out, "states=3") {
		t.Errorf("progress output missing status lines:\n%s", out)
	}
	if !strings.Contains(out, "(final)") {
		t.Errorf("stop() did not print the final line:\n%s", out)
	}
}

// TestStartProgressStopTwice is the regression for the double-stop panic:
// the stop function is naturally called from both a defer and a signal
// handler, so the second (and any concurrent) call must be a no-op rather
// than a close of a closed channel.
func TestStartProgressStopTwice(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	stop := StartProgress(w, time.Millisecond, NewRun())
	stop()
	stop() // must not panic

	// Concurrent double-stop (defer racing a signal handler) must also be
	// safe, and the final line must be printed exactly once.
	stop2 := StartProgress(w, time.Millisecond, NewRun())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop2()
		}()
	}
	wg.Wait()
	mu.Lock()
	finals := strings.Count(b.String(), "(final)")
	mu.Unlock()
	if finals != 2 {
		t.Errorf("final line printed %d times across 2 progress sessions, want 2", finals)
	}
}

// TestRunConcurrentPublishSnapshot hammers every Run field from publisher
// goroutines while snapshotting and JSON-encoding concurrently — the
// contract the serve layer relies on when it streams per-job snapshots
// over HTTP while the job's engine is still publishing. Run under -race.
func TestRunConcurrentPublishSnapshot(t *testing.T) {
	r := NewRun()
	ws := r.SetWorkers(4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				r.States.Inc()
				r.Steps.Add(2)
				r.Activations.Inc()
				r.FrontierDepth.SetMax(int64(i))
				r.VisitedSize.Set(int64(i))
				r.Schedules.Inc()
				ws.Record(w, time.Microsecond)
				if i%256 == 0 {
					r.SetWorkers(4)
				}
			}
		}()
	}
	deadline := time.After(50 * time.Millisecond)
	var last Snapshot
	for looping := true; looping; {
		select {
		case <-deadline:
			looping = false
		default:
			last = r.Snapshot()
			if err := last.WriteJSON(discardWriter{}); err != nil {
				t.Fatalf("WriteJSON under concurrency: %v", err)
			}
		}
	}
	close(done)
	wg.Wait()
	final := r.Snapshot()
	if final.States < last.States {
		t.Errorf("states went backwards: %d then %d", last.States, final.States)
	}
	if final.States == 0 || final.Steps != 2*final.States {
		t.Errorf("final snapshot inconsistent: states=%d steps=%d", final.States, final.Steps)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
