// Package mis provides candidate algorithms for maximal independent set on
// the asynchronous cycle, used to illustrate Property 2.1: MIS is *not*
// solvable wait-free in this model. Since the impossibility is proved by
// reduction (to strong symmetry breaking), no candidate can work; this
// package exhibits the two characteristic failure modes on natural
// attempts, which the bounded model checker certifies on small cycles:
//
//   - Greedy (decide In when locally maximal, Out when a neighbor is In)
//     is safe but not wait-free: a process adjacent to a never-scheduled
//     higher-identifier neighbor loops forever (the checker finds a
//     configuration-graph cycle).
//   - Impatient (like Greedy, but presume a silent higher neighbor crashed
//     after Patience rounds and decide In) is wait-free but unsafe: the
//     checker finds an execution with two adjacent In outputs.
//
// Outputs: Out = 0, In = 1 (matching the problem statement in §2.3).
package mis

import (
	"fmt"

	"asynccycle/internal/sim"
)

// Output values.
const (
	Out = 0
	In  = 1
)

// Val is the register content of both candidates.
type Val struct {
	X       int
	Decided bool
	Member  bool // valid only if Decided
}

// HashFingerprint implements sim.Hashable.
func (v *Val) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(v.X)
	h.HashBool(v.Decided)
	h.HashBool(v.Member)
}

// Greedy is the classic sequential-greedy MIS adapted naively: wait until
// every higher-identifier neighbor has decided; join the MIS if none of
// them joined, else stay out. It is correct in the synchronous failure-free
// LOCAL model but merely starvation-free here — not wait-free.
type Greedy struct {
	x       int
	decided bool
	member  bool
}

// NewGreedy returns a Greedy process with the given identifier.
func NewGreedy(id int) *Greedy { return &Greedy{x: id} }

// Publish implements sim.Node.
func (g *Greedy) Publish() Val { return Val{X: g.x, Decided: g.decided, Member: g.member} }

// Observe implements sim.Node.
func (g *Greedy) Observe(view []sim.Cell[Val]) sim.Decision {
	if g.decided {
		return g.ret()
	}
	higherUndecided := false
	neighborIn := false
	for _, c := range view {
		if !c.Present {
			higherUndecided = true // an unseen neighbor may outrank us; wait
			continue
		}
		if c.Val.Decided {
			if c.Val.Member {
				neighborIn = true
			}
			continue
		}
		if c.Val.X > g.x {
			higherUndecided = true
		}
	}
	switch {
	case neighborIn:
		g.decided, g.member = true, false
	case !higherUndecided:
		g.decided, g.member = true, true
	default:
		// Wait for higher neighbors: the non-wait-free step.
	}
	// A fresh decision is not returned yet: it must first be published, so
	// the node returns at its next round (rounds write before they read).
	return sim.Decision{}
}

func (g *Greedy) ret() sim.Decision {
	out := Out
	if g.member {
		out = In
	}
	return sim.Decision{Return: true, Output: out}
}

// Clone implements sim.Node.
func (g *Greedy) Clone() sim.Node[Val] {
	cp := *g
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (g *Greedy) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(g.x)
	h.HashBool(g.decided)
	h.HashBool(g.member)
}

var _ sim.Node[Val] = (*Greedy)(nil)

// NewGreedyNodes builds one Greedy process per identifier.
func NewGreedyNodes(xs []int) []sim.Node[Val] {
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = NewGreedy(x)
	}
	return nodes
}

// Impatient behaves like Greedy but gives up waiting after Patience rounds
// and joins the MIS, presuming silent higher neighbors crashed. This buys
// wait-freedom at the price of safety: a slow-but-alive higher neighbor
// can make the same presumption, yielding two adjacent members.
type Impatient struct {
	Patience int
	x        int
	waited   int
	decided  bool
	member   bool
}

// NewImpatient returns an Impatient process with the given identifier and
// patience bound (≥ 1).
func NewImpatient(id, patience int) *Impatient {
	if patience < 1 {
		patience = 1
	}
	return &Impatient{x: id, Patience: patience}
}

// Publish implements sim.Node.
func (m *Impatient) Publish() Val { return Val{X: m.x, Decided: m.decided, Member: m.member} }

// Observe implements sim.Node.
func (m *Impatient) Observe(view []sim.Cell[Val]) sim.Decision {
	if m.decided {
		return m.ret()
	}
	higherUndecided := false
	neighborIn := false
	for _, c := range view {
		if !c.Present {
			higherUndecided = true
			continue
		}
		if c.Val.Decided {
			if c.Val.Member {
				neighborIn = true
			}
			continue
		}
		if c.Val.X > m.x {
			higherUndecided = true
		}
	}
	switch {
	case neighborIn:
		m.decided, m.member = true, false
	case !higherUndecided:
		m.decided, m.member = true, true
	default:
		m.waited++
		if m.waited >= m.Patience {
			m.decided, m.member = true, true // presume the laggards crashed
		}
	}
	// As in Greedy, a fresh decision is published before being returned.
	return sim.Decision{}
}

func (m *Impatient) ret() sim.Decision {
	out := Out
	if m.member {
		out = In
	}
	return sim.Decision{Return: true, Output: out}
}

// Clone implements sim.Node.
func (m *Impatient) Clone() sim.Node[Val] {
	cp := *m
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (m *Impatient) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(m.Patience)
	h.HashInt(m.x)
	h.HashInt(m.waited)
	h.HashBool(m.decided)
	h.HashBool(m.member)
}

var _ sim.Node[Val] = (*Impatient)(nil)

// NewImpatientNodes builds one Impatient process per identifier with the
// given patience.
func NewImpatientNodes(xs []int, patience int) []sim.Node[Val] {
	nodes := make([]sim.Node[Val], len(xs))
	for i, x := range xs {
		nodes[i] = NewImpatient(x, patience)
	}
	return nodes
}

// ViolatesMIS checks an outcome against the MIS specification on the given
// edges: (1) no two adjacent terminated processes are both In, and (2)
// every terminated Out process has a terminated In neighbor when all its
// neighbors terminated. It returns a description of the first violation,
// or "".
func ViolatesMIS(edges [][2]int, n int, outputs []int, done []bool) string {
	adjIn := make([]bool, n)
	allNbDone := make([]bool, n)
	for i := range allNbDone {
		allNbDone[i] = true
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if done[u] && done[v] && outputs[u] == In && outputs[v] == In {
			return violationAdjacent(u, v)
		}
		if done[v] && outputs[v] == In {
			adjIn[u] = true
		}
		if done[u] && outputs[u] == In {
			adjIn[v] = true
		}
		if !done[u] {
			allNbDone[v] = false
		}
		if !done[v] {
			allNbDone[u] = false
		}
	}
	for i := 0; i < n; i++ {
		if done[i] && outputs[i] == Out && allNbDone[i] && !adjIn[i] {
			return violationUncovered(i)
		}
	}
	return ""
}

func violationAdjacent(u, v int) string {
	return fmt.Sprintf("adjacent nodes %d and %d both in MIS", u, v)
}

func violationUncovered(i int) string {
	return fmt.Sprintf("node %d out of MIS with no In neighbor", i)
}
