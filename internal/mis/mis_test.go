package mis_test

import (
	"fmt"
	"testing"

	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func misInvariant(g graph.Graph) model.Invariant[mis.Val] {
	return func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
}

func TestViolatesMIS(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}} // C3
	allDone := []bool{true, true, true}
	tests := []struct {
		name    string
		outputs []int
		done    []bool
		wantHit bool
	}{
		{"valid single in", []int{mis.In, mis.Out, mis.Out}, allDone, false},
		{"adjacent both in", []int{mis.In, mis.In, mis.Out}, allDone, true},
		{"uncovered out", []int{mis.Out, mis.Out, mis.Out}, allDone, true},
		{"partial: undecided neighbor exempts", []int{mis.Out, mis.Out, mis.Out}, []bool{true, true, false}, false},
		{"partial adjacent in still caught", []int{mis.In, mis.In, mis.Out}, []bool{true, true, false}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := mis.ViolatesMIS(edges, 3, tt.outputs, tt.done)
			if (got != "") != tt.wantHit {
				t.Errorf("ViolatesMIS = %q, wantHit=%t", got, tt.wantHit)
			}
		})
	}
}

func TestGreedySolvesMISSynchronouslyWithoutFaults(t *testing.T) {
	// Under the synchronous failure-free schedule the greedy candidate
	// does compute a valid MIS — the impossibility bites only with
	// asynchrony and crashes.
	for _, n := range []int{3, 4, 7, 16} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Random, n, int64(n))
		e, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
		res, err := e.Run(schedule.Synchronous{}, 10_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.TerminatedCount() != n {
			t.Fatalf("n=%d: only %d terminated", n, res.TerminatedCount())
		}
		if v := mis.ViolatesMIS(g.Edges(), n, res.Outputs, res.Done); v != "" {
			t.Errorf("n=%d: %s", n, v)
		}
	}
}

func TestGreedyIsSafeButNotWaitFree(t *testing.T) {
	for _, n := range []int{3, 4} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		e, _ := sim.NewEngine(g, mis.NewGreedyNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, misInvariant(g))
		if len(rep.Violations) > 0 {
			t.Errorf("C%d: greedy violated MIS safety: %v", n, rep.Violations)
		}
		if !rep.CycleFound {
			t.Errorf("C%d: greedy should livelock (not wait-free)", n)
		}
	}
}

func TestImpatientIsWaitFreeButUnsafe(t *testing.T) {
	for _, n := range []int{3, 4} {
		g := graph.MustCycle(n)
		xs := ids.MustGenerate(ids.Increasing, n, 0)
		e, _ := sim.NewEngine(g, mis.NewImpatientNodes(xs, 2))
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, misInvariant(g))
		if rep.CycleFound {
			t.Errorf("C%d: impatient should be wait-free", n)
		}
		if len(rep.Violations) == 0 {
			t.Errorf("C%d: impatient should admit an MIS violation", n)
		}
	}
}

func TestGreedyBlocksOnSleepingHigherNeighbor(t *testing.T) {
	// Concretely: node 0 (highest id asleep forever) starves node 1.
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, mis.NewGreedyNodes([]int{9, 5, 1}))
	e.CrashAfter(0, 0) // the local max never wakes
	_, err := e.Run(schedule.NewRoundRobin(1), 500)
	// The run settles only because the engine's step limit or crash rules
	// end it; the point is that nodes waiting on node 0 never terminate.
	if err == nil {
		res := e.Result()
		if res.Done[1] && res.Done[2] {
			t.Error("greedy decided under a crashed higher neighbor — should wait forever")
		}
	}
}

func TestImpatientDecidesDespiteCrash(t *testing.T) {
	g := graph.MustCycle(3)
	e, _ := sim.NewEngine(g, mis.NewImpatientNodes([]int{9, 5, 1}, 3))
	e.CrashAfter(0, 0)
	res, err := e.Run(schedule.NewRoundRobin(1), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if !res.Done[i] {
			t.Errorf("impatient node %d did not decide", i)
		}
	}
}

func TestNodeConstructors(t *testing.T) {
	gs := mis.NewGreedyNodes([]int{1, 2, 3})
	is := mis.NewImpatientNodes([]int{1, 2, 3}, 0) // patience clamped to 1
	if len(gs) != 3 || len(is) != 3 {
		t.Fatal("wrong counts")
	}
	if p := is[0].(*mis.Impatient); p.Patience != 1 {
		t.Errorf("patience = %d, want clamped 1", p.Patience)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mis.NewGreedy(5)
	c := g.Clone()
	view := []sim.Cell[mis.Val]{
		{Present: true, Val: mis.Val{X: 1, Decided: true, Member: true}},
		{Present: true, Val: mis.Val{X: 2, Decided: true, Member: false}},
	}
	// First round decides (but publishes before returning, so no Return
	// yet); the second round returns the published decision.
	if dec := c.Observe(view); dec.Return {
		t.Fatalf("clone returned before publishing its decision: %+v", dec)
	}
	if v := c.Publish(); !v.Decided || v.Member {
		t.Fatalf("clone publish = %+v, want decided Out", v)
	}
	dec := c.Observe(view)
	if !dec.Return || dec.Output != mis.Out {
		t.Fatalf("clone dec = %+v, want Out (neighbor in MIS)", dec)
	}
	// The original was never observed: still undecided.
	if v := g.Publish(); v.Decided {
		t.Fatal("observing the clone mutated the original")
	}
}
