// Quickstart: wait-free 5-coloring of a 1000-node asynchronous cycle with
// the paper's fast algorithm (Algorithm 3), using the public asynccycle
// API. Each process learns a color in {0..4} within O(log* n) of its own
// rounds, no matter how the adversarial scheduler interleaves everyone
// else.
package main

import (
	"fmt"
	"log"

	"asynccycle"
)

func main() {
	const n = 1000

	// Every process starts with a unique identifier from a poly(n) range.
	ids := asynccycle.GenerateIDs(n, 2022)

	// Run Algorithm 3 under an adversarial random scheduler.
	res, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{
		Scheduler: asynccycle.RandomSubset(0.3, 7),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify what the paper's Theorem 4.4 promises.
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyPalette(res, 5); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("colored C_%d with 5 colors in %d steps\n", n, res.Steps)
	fmt.Printf("max rounds by any process: %d (log*-ish, not linear!)\n", res.MaxActivations())
	fmt.Printf("first 20 colors: ")
	for i := 0; i < 20; i++ {
		fmt.Printf("%d ", res.Outputs[i])
	}
	fmt.Println("…")
}
