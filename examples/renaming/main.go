// Renaming: the paper observes (§2.3, Property 2.3) that on the complete
// graph its model coincides with classic wait-free shared memory — every
// process reads every register. This example runs the rank-based
// (2n−1)-renaming algorithm (the ancestor of Algorithm 2's color picking,
// §1.3) on that substrate: n processes with huge identifiers each acquire
// a unique name from {0, …, 2n−2}, wait-free.
//
// It uses the internal engine directly, showing how to drive custom
// algorithms on custom topologies.
package main

import (
	"fmt"
	"log"

	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/renaming"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func main() {
	const n = 12

	g, err := graph.Complete(n)
	if err != nil {
		log.Fatal(err)
	}
	xs := ids.RandomIDs(n, 4242) // identifiers from the huge range [0, n²)

	e, err := sim.NewEngine(g, renaming.NewNodes(xs))
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run(schedule.NewRandomOne(17), 100_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wait-free renaming of %d processes on K_%d (shared memory)\n", n, n)
	fmt.Printf("%10s  %s\n", "identifier", "acquired name")
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		fmt.Printf("%10d  %d\n", xs[i], res.Outputs[i])
		if seen[res.Outputs[i]] {
			log.Fatalf("duplicate name %d", res.Outputs[i])
		}
		seen[res.Outputs[i]] = true
		if res.Outputs[i] > renaming.MaxName(n) {
			log.Fatalf("name %d exceeds 2n−2 = %d", res.Outputs[i], renaming.MaxName(n))
		}
	}
	fmt.Printf("all names unique and ≤ 2n−2 = %d\n", renaming.MaxName(n))
}
