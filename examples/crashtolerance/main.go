// Crash tolerance: half the processes crash at adversarial moments — some
// before ever waking, some mid-protocol — and every survivor still
// terminates with a color that properly colors the surviving subgraph.
// This is the "fault tolerant" in the paper's title: the algorithms are
// wait-free, so no process ever waits on a crashed neighbor.
package main

import (
	"fmt"
	"log"

	"asynccycle"
)

func main() {
	const n = 500

	ids := asynccycle.GenerateIDs(n, 99)

	// Crash every other process: even indices crash after i%4 rounds
	// (0 = never wakes at all).
	crashes := make(map[int]int)
	for i := 0; i < n; i += 2 {
		crashes[i] = i % 4
	}

	res, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler:  asynccycle.RandomOne(3),
		CrashAfter: crashes,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := asynccycle.VerifySurvivorsTerminated(res); err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		log.Fatal(err)
	}

	crashed, done := 0, 0
	for i := range res.Done {
		if res.Crashed[i] {
			crashed++
		}
		if res.Done[i] {
			done++
		}
	}
	fmt.Printf("processes: %d, crashed: %d, terminated with a color: %d\n", n, crashed, done)
	fmt.Printf("every survivor finished; outputs properly color the induced subgraph\n")
	fmt.Printf("max rounds by any process: %d\n", res.MaxActivations())
}
