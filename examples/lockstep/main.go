// Lockstep: demonstrates repository finding F1. The paper's model (§2.1)
// allows several processes to perform their rounds simultaneously ("all
// write, then all read"). Under that literal semantics, Algorithm 2
// livelocks: on C5 with identifiers 1..5, the alternating schedule makes
// nodes 1 and 3 terminate instantly with color 0 frozen in their
// registers, after which the adjacent pair {0, 4} — always activated
// together — chase each other's colors with period 2, forever.
//
// Under the standard interleaved semantics (every execution a sequence of
// atomic single-process rounds), the same schedule terminates in a
// handful of steps, as Theorem 3.11 states. Safety is unaffected either
// way. The model checker certifies both facts exhaustively on C3/C4 (see
// EXPERIMENTS.md, F1).
package main

import (
	"errors"
	"fmt"
	"log"

	"asynccycle"
)

func main() {
	ids := []int{1, 2, 3, 4, 5}

	fmt.Println("Algorithm 2 on C5, alternating lockstep schedule")
	fmt.Println()

	// Paper-literal simultaneous rounds: livelock (step budget exhausted).
	_, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler: asynccycle.Alternating(),
		Mode:      asynccycle.ModeSimultaneous,
		MaxSteps:  10_000,
	})
	switch {
	case errors.Is(err, asynccycle.ErrStepLimit):
		fmt.Println("simultaneous semantics: LIVELOCK (10,000 steps without termination)")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Println("simultaneous semantics: terminated (unexpected — finding F1 regressed!)")
	}

	// Standard interleaved semantics: wait-free, as the theorem states.
	res, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler: asynccycle.Alternating(),
		Mode:      asynccycle.ModeInterleaved,
		MaxSteps:  10_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(len(ids), res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved semantics:  terminated in %d steps, colors %v\n", res.Steps, res.Outputs)
	fmt.Println()
	fmt.Println("the mex(C) color chase needs perfect write-read lockstep to survive;")
	fmt.Println("any single sequential round breaks the symmetry and the pair terminates")
}
