// Decoupled: the separation behind the paper's §1.4 related-work
// discussion. In the paper's fully asynchronous state model, wait-free
// coloring of the cycle provably needs 5 colors (Property 2.3). The
// DECOUPLED model of Castañeda et al. adds one thing — a synchronous,
// reliable communication layer under the same asynchronous crash-prone
// processes — and that one thing (a common clock, hence observable
// wake-up order) brings the palette down to 3.
//
// This example colors the same ring with both models' algorithms, under
// asynchronous scheduling with a fifth of the processes crashed at birth.
package main

import (
	"fmt"
	"log"

	"asynccycle"
	"asynccycle/internal/decoupled"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/schedule"
)

func main() {
	const n = 60
	xs := ids.RandomIDs(n, 11)

	// State model (this paper): 5 colors, wait-free against every crash
	// pattern.
	crashes := map[int]int{}
	for i := 0; i < n; i += 5 {
		crashes[i] = 0 // never wakes
	}
	res, err := asynccycle.FastColorCycle(xs, &asynccycle.Config{
		Scheduler:  asynccycle.RandomSubset(0.4, 3),
		CrashAfter: crashes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state model   (Algorithm 3): palette guarantee {0..4}; this run used %d colors\n",
		countColors(res.Outputs, res.Done))

	// DECOUPLED model: 3 colors, exploiting the synchronous layer's clock.
	g := graph.MustCycle(n)
	e, err := decoupled.NewEngine(g, decoupled.NewThreeColorNodes(xs))
	if err != nil {
		log.Fatal(err)
	}
	for i := range crashes {
		e.CrashAfter(i, 0)
	}
	dres, err := e.Run(schedule.NewRandomSubset(0.4, 3), 100_000)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if dres.Done[i] && dres.Done[j] && dres.Outputs[i] == dres.Outputs[j] {
			log.Fatalf("improper coloring at edge %d-%d", i, j)
		}
	}
	fmt.Printf("DECOUPLED     (wake-priority): palette guarantee {0..2}; this run used %d colors, %d network rounds\n",
		countColors(dres.Outputs, dres.Done), dres.CommRounds)
	fmt.Println()
	fmt.Println("same processes, same crashes, same asynchrony — but no algorithm in the")
	fmt.Println("state model can PROMISE fewer than 5 colors (Property 2.3), while the")
	fmt.Println("synchronous layer's common clock lets DECOUPLED promise 3")
}

func countColors(outputs []int, done []bool) int {
	used := map[int]bool{}
	for i, out := range outputs {
		if done[i] {
			used[out] = true
		}
	}
	return len(used)
}
