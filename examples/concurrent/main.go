// Concurrent: the same algorithms on real goroutines instead of the
// deterministic simulator — one goroutine per cycle node, single-writer
// registers, and atomic local immediate snapshots via ordered neighborhood
// locking. Asynchrony comes from the Go scheduler plus injected jitter;
// a third of the processes crash mid-protocol.
//
// Run with -race to let the race detector audit the register discipline.
package main

import (
	"fmt"
	"log"

	"asynccycle"
)

func main() {
	const n = 300

	ids := asynccycle.GenerateIDs(n, 1)

	crashes := make(map[int]int)
	for i := 0; i < n; i += 3 {
		crashes[i] = i % 5 // 0 = never wakes
	}

	res, err := asynccycle.FastColorCycleConcurrent(ids, &asynccycle.ConcurrentConfig{
		CrashAfter: crashes,
		Jitter:     20_000, // up to 20µs between rounds
		Seed:       7,
		Yield:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := asynccycle.VerifySurvivorsTerminated(res); err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		log.Fatal(err)
	}
	if err := asynccycle.VerifyPalette(res, 5); err != nil {
		log.Fatal(err)
	}

	crashed := 0
	for _, c := range res.Crashed {
		if c {
			crashed++
		}
	}
	fmt.Printf("goroutine run: n=%d crashed=%d survivors all colored\n", n, crashed)
	fmt.Printf("max rounds by any goroutine: %d\n", res.MaxActivations())
}
