// General graphs: the paper's Appendix A extends Algorithm 1 beyond the
// cycle — the same machine wait-free colors any graph of maximum degree Δ
// with the O(Δ²) palette {(a,b) : a+b ≤ Δ}. Here we color a 3-regular-ish
// "ladder" (a cycle with rungs) and decode the pair colors.
package main

import (
	"fmt"
	"log"

	"asynccycle"
)

// ladder builds a circular ladder graph CL_k: two concentric k-cycles
// joined by rungs, every node of degree 3.
func ladder(k int) [][]int {
	n := 2 * k
	adj := make([][]int, n)
	for i := 0; i < k; i++ {
		outer := i
		inner := k + i
		adj[outer] = append(adj[outer], (i+1)%k, (i+k-1)%k, inner)
		adj[inner] = append(adj[inner], k+(i+1)%k, k+(i+k-1)%k, outer)
	}
	return adj
}

func main() {
	const k = 50
	adj := ladder(k)
	n := len(adj)

	ids := asynccycle.GenerateIDs(n, 5)

	res, err := asynccycle.ColorGraph(adj, ids, &asynccycle.Config{
		Scheduler: asynccycle.RoundRobin(4),
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := asynccycle.VerifyGraphColoring(adj, res); err != nil {
		log.Fatal(err)
	}
	const maxDeg = 3
	if err := asynccycle.VerifyPairPalette(res, maxDeg); err != nil {
		log.Fatal(err)
	}

	// Count distinct colors actually used.
	used := map[int]bool{}
	for i, out := range res.Outputs {
		if res.Done[i] {
			used[out] = true
		}
	}
	fmt.Printf("circular ladder CL_%d (n=%d, Δ=%d)\n", k, n, maxDeg)
	fmt.Printf("palette size (Δ+1)(Δ+2)/2 = %d, colors actually used: %d\n",
		asynccycle.PairPaletteSize(maxDeg), len(used))
	for c := range used {
		a, b := asynccycle.DecodePairColor(c)
		fmt.Printf("  pair (%d,%d)\n", a, b)
	}
	fmt.Printf("max rounds by any process: %d\n", res.MaxActivations())
}
