// Adversary: reproduces the paper's core quantitative claim head to head.
// On the worst-case input — identifiers increasing around the cycle, one
// monotone chain of length n−1 — Algorithm 2 needs Θ(n) rounds per process
// while Algorithm 3's Cole–Vishkin identifier reduction brings it down to
// O(log* n). Watch the speedup grow with n.
package main

import (
	"fmt"
	"log"

	"asynccycle"
)

func main() {
	fmt.Printf("%8s  %12s  %12s  %8s\n", "n", "alg2 rounds", "alg3 rounds", "speedup")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		// The adversarial input: 1, 2, …, n around the cycle.
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i + 1
		}

		res2, err := asynccycle.FiveColorCycle(ids, nil) // synchronous schedule
		if err != nil {
			log.Fatal(err)
		}
		res3, err := asynccycle.FastColorCycle(ids, nil)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range []asynccycle.Result{res2, res3} {
			if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
				log.Fatal(err)
			}
			if err := asynccycle.VerifyPalette(res, 5); err != nil {
				log.Fatal(err)
			}
		}

		m2, m3 := res2.MaxActivations(), res3.MaxActivations()
		fmt.Printf("%8d  %12d  %12d  %7.1fx\n", n, m2, m3, float64(m2)/float64(m3))
	}
	fmt.Println("\nalg2 grows linearly with n; alg3 stays flat (Theorem 4.4: O(log* n))")
}
