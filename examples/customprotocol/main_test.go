package main

import (
	"strings"
	"testing"
)

// TestCustomProtocolEndToEnd pins the demo's full path: registration,
// facade run with a crash, exhaustive check, and fuzz campaign all succeed
// and the deterministic numbers stay put.
func TestCustomProtocolEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"facade: terminated=5/6 outputs=[0 1 0 1 -1 1]",
		"modelcheck: states=729 violations=0 livelock=false",
		"schedfuzz: schedules=32 violations=0 divergences=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestParityPrecondition pins the ValidateIDs promise: odd length, short
// cycles, negative identifiers, and parity collisions are all rejected
// through the facade with ErrBadInput semantics.
func TestParityPrecondition(t *testing.T) {
	for _, xs := range [][]int{
		{0, 1, 2},          // odd n
		{0, 1},             // too short
		{0, 1, 2, -3},      // negative
		{0, 2, 1, 3},       // parity collision on an edge
		{1, 2, 3, 4, 5, 7}, // parity collision on the last interior edge
	} {
		if err := validateParityIDs(xs); err == nil {
			t.Errorf("validateParityIDs(%v) accepted invalid input", xs)
		}
	}
	for _, xs := range [][]int{{4, 1, 8, 3}, {0, 1, 2, 3, 4, 5}} {
		if err := validateParityIDs(xs); err != nil {
			t.Errorf("validateParityIDs(%v) rejected a valid assignment: %v", xs, err)
		}
	}
}
