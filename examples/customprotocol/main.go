// Command customprotocol demonstrates the protocol registry's extension
// contract (DESIGN.md §10) end to end: it defines a toy wait-free
// 2-coloring of even cycles as ordinary sim.Node state machines, registers
// it with protocol.RegisterEngine, and then drives it through every layer
// the builtin algorithms use — the root facade (RunProtocol), the bounded
// model checker, and the schedule fuzzer — without touching any of them.
//
// The protocol: identifiers on an even cycle are promised to alternate in
// parity (the precondition ValidateIDs enforces and FuzzIDs generates), so
// "output my identifier's parity" is a proper 2-coloring. Each process
// publishes once, looks at its neighbors once, and terminates on its
// second activation — wait-free with bound 2, trivially crash-tolerant.
package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"

	"asynccycle"
	"asynccycle/internal/check"
	"asynccycle/internal/fuzzsched"
	"asynccycle/internal/graph"
	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
	"asynccycle/internal/sim"
)

// parityVal is the register content: the process's identifier parity.
type parityVal struct {
	Parity int
}

// HashFingerprint implements sim.Hashable for the model checker.
func (v *parityVal) HashFingerprint(h *sim.FPHasher) { h.HashInt(v.Parity) }

// parityNode outputs its identifier's parity on its second activation.
// The first round publishes; terminating only on the next round keeps the
// published value visible to neighbors forever (rounds write before they
// read), the same idiom the builtin protocols use.
type parityNode struct {
	parity int
	seen   bool
}

func (p *parityNode) Publish() parityVal { return parityVal{Parity: p.parity} }

func (p *parityNode) Observe(view []sim.Cell[parityVal]) sim.Decision {
	if !p.seen {
		p.seen = true
		return sim.Decision{}
	}
	return sim.Decision{Return: true, Output: p.parity}
}

func (p *parityNode) Clone() sim.Node[parityVal] {
	cp := *p
	return &cp
}

// HashFingerprint implements sim.Hashable.
func (p *parityNode) HashFingerprint(h *sim.FPHasher) {
	h.HashInt(p.parity)
	h.HashBool(p.seen)
}

func newParityNodes(xs []int) []sim.Node[parityVal] {
	nodes := make([]sim.Node[parityVal], len(xs))
	for i, x := range xs {
		nodes[i] = &parityNode{parity: x % 2}
	}
	return nodes
}

// validateParityIDs is the protocol's input promise: an even cycle whose
// identifiers alternate in parity around it.
func validateParityIDs(xs []int) error {
	n := len(xs)
	if n < 4 || n%2 != 0 {
		return fmt.Errorf("parity2 needs an even cycle with n ≥ 4, got %d", n)
	}
	for i, x := range xs {
		if x < 0 {
			return fmt.Errorf("negative identifier %d", x)
		}
		if x%2 == xs[(i+1)%n]%2 {
			return fmt.Errorf("identifiers %d and %d share parity across edge %d-%d", x, xs[(i+1)%n], i, (i+1)%n)
		}
	}
	return nil
}

func init() {
	protocol.MustRegisterEngine(protocol.EngineSpec[parityVal]{
		Meta: protocol.Descriptor{
			Name:         "parity2",
			Problem:      "2-coloring of the even cycle from alternating-parity identifiers",
			Source:       "examples/customprotocol (registry extension demo)",
			TopologyName: "even cycle",
			MinN:         4,
			Palette:      "{0,1}",
			BoundDesc:    "2",
			Expectation:  "wait-free and safe: the promise does all the work",
			Bound:        func(n int) int { return 2 },
			Topology: func(n int) (graph.Graph, error) {
				if n%2 != 0 {
					return graph.Graph{}, fmt.Errorf("parity2 needs an even cycle, got n=%d", n)
				}
				return graph.Cycle(n)
			},
			ValidateIDs: validateParityIDs,
			Validity: func(g graph.Graph, r sim.Result) error {
				if err := check.ProperColoring(g, r); err != nil {
					return err
				}
				return check.PaletteRange(r, 2)
			},
			// FixN and FuzzIDs teach the fuzzer the promise: even sizes,
			// alternating parities, otherwise random identifiers.
			FixN: func(n int) int {
				if n < 4 {
					n = 4
				}
				if n%2 != 0 {
					n++
				}
				return n
			},
			FuzzIDs: func(rng *rand.Rand, n int) []int {
				xs := make([]int, n)
				for i := range xs {
					xs[i] = 2*rng.Intn(1000) + i%2
				}
				return xs
			},
		},
		New: newParityNodes,
	})
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "customprotocol:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// 1. The root facade runs it by name like any builtin, crashes included.
	xs := []int{10, 3, 6, 7, 2, 9}
	res, err := asynccycle.RunProtocol("parity2", xs, &asynccycle.Config{
		CrashAfter: map[int]int{4: 1},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "facade: terminated=%d/%d outputs=%v\n", res.TerminatedCount(), len(xs), res.Outputs)

	// 2. The model checker verifies it exhaustively over every schedule.
	d, err := protocol.Lookup("parity2")
	if err != nil {
		return err
	}
	rep, err := d.Check(xs, sim.ModeInterleaved, model.Options{SingletonsOnly: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "modelcheck: states=%d violations=%d livelock=%t\n", rep.States, len(rep.Violations), rep.CycleFound)

	// 3. The schedule fuzzer attacks it with its differential oracle.
	frep, err := fuzzsched.Campaign(context.Background(), fuzzsched.Config{
		Alg: "parity2", Mode: sim.ModeInterleaved, Seed: 7, Campaign: 32, Workers: 2, ConcEvery: 8,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "schedfuzz: schedules=%d violations=%d divergences=%d\n",
		frep.Schedules, len(frep.Violations), len(frep.Divergences))
	if len(rep.Violations) > 0 || rep.CycleFound || len(frep.Violations) > 0 || len(frep.Divergences) > 0 {
		return fmt.Errorf("parity2 failed verification")
	}
	return nil
}
