// Package asynccycle is a Go implementation of the wait-free coloring
// algorithms of Fraigniaud, Lambein-Monette and Rabie, "Fault Tolerant
// Coloring of the Asynchronous Cycle" (PODC 2022, arXiv:2207.11198), along
// with the full asynchronous crash-prone state model they run in.
//
// # The model
//
// n processes occupy the nodes of a graph (primarily the cycle C_n). Each
// owns a single-writer/multi-reader register, initially ⊥. A process round
// atomically writes the own register, reads the neighbors' registers (a
// local immediate snapshot), and updates local state, possibly terminating
// with an output color. An adversarial scheduler decides which processes
// move at each instant; processes can crash (stop being scheduled) at any
// time. Wait-free means every process terminates within a bounded number
// of its own rounds, no matter what the others do.
//
// # The algorithms
//
//   - SixColorCycle — the paper's Algorithm 1: 6 colors (pairs (a, b) with
//     a+b ≤ 2), terminating in at most ⌊3n/2⌋+4 rounds per process.
//   - ColorGraph — the paper's Algorithm 4: the same machine on arbitrary
//     graphs of maximum degree Δ, with (Δ+1)(Δ+2)/2 colors.
//   - FiveColorCycle — Algorithm 2: the optimal 5-color palette, O(n)
//     rounds per process.
//   - FastColorCycle — Algorithm 3: 5 colors in O(log* n) rounds per
//     process, the paper's headline result.
//
// Runs are deterministic given a scheduler and identifiers; use the
// Concurrent variants to execute with real goroutines instead.
//
// Outputs of terminated processes always properly color the subgraph they
// induce, even when other processes crash mid-protocol — this holds at
// every instant, under every schedule (exhaustively model-checked on small
// cycles; see the internal/model package and EXPERIMENTS.md).
package asynccycle

import (
	"context"
	"errors"
	"fmt"

	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// Result describes a finished execution: per-process outputs (-1 for
// processes that crashed or starved before terminating), termination and
// crash flags, per-process round counts, and the total step count.
type Result = sim.Result

// Scheduler decides which processes are activated at each time step. Use
// the constructors in this package (Synchronous, RoundRobin, RandomSubset,
// RandomOne, Alternating, Burst, Sleep) or implement the interface for a
// custom adversary.
type Scheduler = schedule.Scheduler

// Mode selects the semantics of multi-process activation sets: interleaved
// (default; the standard asynchronous adversary) or simultaneous (the
// paper's literal write-all-then-read-all rounds). See EXPERIMENTS.md
// finding F1 for why the distinction matters.
type Mode = sim.Mode

// Re-exported Mode values.
const (
	ModeInterleaved  = sim.ModeInterleaved
	ModeSimultaneous = sim.ModeSimultaneous
)

// Config tunes a deterministic run. The zero value is ready to use: a
// synchronous scheduler, interleaved semantics, no crashes, and a generous
// step limit.
type Config struct {
	// Scheduler drives the execution; nil means Synchronous().
	Scheduler Scheduler
	// Mode selects the activation semantics (default ModeInterleaved).
	Mode Mode
	// CrashAfter maps a process index to a round count after which it
	// crashes (0 = never wakes).
	CrashAfter map[int]int
	// MaxSteps bounds the execution length; exceeding it returns an error
	// wrapping ErrStepLimit. 0 means a limit proportional to n².
	MaxSteps int
	// Topology, when non-empty, retargets the protocol onto another graph
	// family ("path", "complete", "torus", "random:Δ[:seed]", optionally
	// "+shuffled:SEED") before running; the typed helpers route through
	// RunProtocol, so it applies to them too. Families the protocol does
	// not declare support for fail with ErrBadInput; off the native family
	// the cycle-specific round bound and identifier precondition are
	// dropped (DESIGN.md §14).
	Topology string
	// Context, when non-nil, cancels the run: the engine stops between
	// steps once it is done and returns the partial Result so far together
	// with an error wrapping ErrBudget. A nil Context (the default) leaves
	// the un-budgeted path untouched.
	Context context.Context
	// Budget bounds the run along explicit axes (wall-clock, steps,
	// activations). A tripped budget likewise returns the partial Result
	// with an error wrapping ErrBudget. The zero value imposes no bounds.
	Budget Budget
}

// Budget bounds a run along independent axes: wall-clock Timeout, MaxSteps,
// and MaxActivations (MaxStates applies to model checking, not executions).
// The zero value imposes no bounds.
type Budget = runctl.Budget

// StopReason labels why a budgeted run stopped early; it is the string
// inside the ErrBudget-wrapping error a tripped budget produces.
type StopReason = runctl.StopReason

// ErrStepLimit is returned (wrapped) when an execution exceeds its step
// budget without settling.
var ErrStepLimit = sim.ErrStepLimit

// ErrBadInput reports invalid identifiers or topology.
var ErrBadInput = errors.New("asynccycle: invalid input")

// ErrBudget is the sentinel wrapped by the error returned when a run is
// stopped by Config.Context or Config.Budget. The accompanying Result is
// the valid partial execution up to the stopping point.
var ErrBudget = runctl.ErrBudget

func (c *Config) scheduler() Scheduler {
	if c == nil || c.Scheduler == nil {
		return schedule.Synchronous{}
	}
	return c.Scheduler
}

func (c *Config) maxSteps(n int) int {
	if c == nil || c.MaxSteps <= 0 {
		ms := 200*n*n + 10_000
		return ms
	}
	return c.MaxSteps
}

// runOn executes nodes over g under cfg.
func runOn[V any](g graph.Graph, nodes []sim.Node[V], cfg *Config) (Result, error) {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		return Result{}, err
	}
	if cfg != nil {
		e.SetMode(cfg.Mode)
		for i, k := range cfg.CrashAfter {
			if i < 0 || i >= g.N() {
				return Result{}, fmt.Errorf("%w: crash index %d out of range", ErrBadInput, i)
			}
			e.CrashAfter(i, k)
		}
	}
	if cfg != nil && (cfg.Context != nil || !cfg.Budget.IsZero()) {
		b := cfg.Budget
		b.MaxSteps = runctl.Min(cfg.maxSteps(g.N()), b.MaxSteps)
		res, reason := e.RunBudget(cfg.Context, cfg.scheduler(), b)
		if reason != runctl.StopNone {
			return res, fmt.Errorf("%w: %s", ErrBudget, reason)
		}
		return res, nil
	}
	return e.Run(cfg.scheduler(), cfg.maxSteps(g.N()))
}

// FiveColorCycle runs Algorithm 2 (wait-free 5-coloring, O(n) rounds) on
// the cycle whose node i has identifier xs[i] and neighbors (i±1) mod n.
// Outputs are colors in {0, …, 4}.
func FiveColorCycle(xs []int, cfg *Config) (Result, error) {
	return RunProtocol("five", xs, cfg)
}

// FastColorCycle runs Algorithm 3 (wait-free 5-coloring, O(log* n) rounds)
// on the cycle. Outputs are colors in {0, …, 4}.
func FastColorCycle(xs []int, cfg *Config) (Result, error) {
	return RunProtocol("fast", xs, cfg)
}

// SixColorCycle runs Algorithm 1 (wait-free 6-coloring with color pairs)
// on the cycle. Outputs are encoded pairs; decode with DecodePairColor.
func SixColorCycle(xs []int, cfg *Config) (Result, error) {
	return RunProtocol("six", xs, cfg)
}

// ColorGraph runs Algorithm 4 (wait-free O(Δ²)-coloring) on an arbitrary
// graph given as an adjacency list. Identifiers must be non-negative and
// distinct across every edge. Outputs are encoded pairs (a, b) with
// a+b ≤ Δ; decode with DecodePairColor.
func ColorGraph(adj [][]int, xs []int, cfg *Config) (Result, error) {
	if len(xs) != len(adj) {
		return Result{}, fmt.Errorf("%w: %d identifiers for %d nodes", ErrBadInput, len(xs), len(adj))
	}
	g, err := graph.New("user", adj)
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	for _, e := range g.Edges() {
		if xs[e[0]] == xs[e[1]] {
			return Result{}, fmt.Errorf("%w: identifiers equal across edge %d-%d", ErrBadInput, e[0], e[1])
		}
	}
	for _, x := range xs {
		if x < 0 {
			return Result{}, fmt.Errorf("%w: negative identifier %d", ErrBadInput, x)
		}
	}
	return runOn(g, core.NewPairNodes(xs), cfg)
}

// DecodePairColor unpacks an output of SixColorCycle or ColorGraph into
// its color pair (a, b).
func DecodePairColor(c int) (a, b int) { return core.DecodePair(c) }

// PairPaletteSize returns the palette size of ColorGraph on graphs of
// maximum degree Δ: (Δ+1)(Δ+2)/2 (6 for the cycle).
func PairPaletteSize(maxDeg int) int { return core.PairPaletteSize(maxDeg) }

// ConcurrentConfig tunes a goroutine-based run. The zero value is ready to
// use.
type ConcurrentConfig struct {
	// CrashAfter maps a process index to a round count after which its
	// goroutine stops (0 = never wakes).
	CrashAfter map[int]int
	// Jitter, when positive, adds a random sleep up to this duration (in
	// nanoseconds, as time.Duration) between rounds.
	Jitter int64
	// Seed seeds the jitter sources.
	Seed int64
	// Yield makes each process yield the scheduler between rounds.
	Yield bool
	// Context, when non-nil, cancels the run: node goroutines stop between
	// rounds once it is done and the call returns the partial Result with
	// an error wrapping ErrBudget.
	Context context.Context
}

func (c *ConcurrentConfig) options() conc.Options {
	if c == nil {
		return conc.Options{Yield: true}
	}
	return conc.Options{
		CrashAfter: c.CrashAfter,
		Jitter:     durationFromNanos(c.Jitter),
		Seed:       c.Seed,
		Yield:      c.Yield,
		Context:    c.Context,
	}
}

// FiveColorCycleConcurrent runs Algorithm 2 with one goroutine per process.
func FiveColorCycleConcurrent(xs []int, cfg *ConcurrentConfig) (Result, error) {
	return RunProtocolConcurrent("five", xs, cfg)
}

// FastColorCycleConcurrent runs Algorithm 3 with one goroutine per process.
func FastColorCycleConcurrent(xs []int, cfg *ConcurrentConfig) (Result, error) {
	return RunProtocolConcurrent("fast", xs, cfg)
}

// SixColorCycleConcurrent runs Algorithm 1 with one goroutine per process.
func SixColorCycleConcurrent(xs []int, cfg *ConcurrentConfig) (Result, error) {
	return RunProtocolConcurrent("six", xs, cfg)
}
