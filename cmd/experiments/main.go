// Command experiments regenerates every reproduction experiment of
// DESIGN.md (E1–E17 and finding F1) and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E3,E4] [-format text|markdown|csv]
//	            [-parallel N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asynccycle/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink parameter sweeps for a fast run")
	seed := fs.Int64("seed", 1, "random seed for workloads and schedulers")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E3,E4,F1)")
	format := fs.String("format", "text", "output format: text, markdown, or csv")
	parallel := fs.Int("parallel", 0, "sweep-cell workers per experiment (0 = GOMAXPROCS, 1 = serial); tables are byte-identical at every setting")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var render func(*expt.Table) error
	switch *format {
	case "text":
		render = func(t *expt.Table) error {
			_, err := t.WriteTo(w)
			return err
		}
	case "markdown":
		render = func(t *expt.Table) error { return t.WriteMarkdown(w) }
	case "csv":
		render = func(t *expt.Table) error { return t.WriteCSV(w) }
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	opt := expt.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel}
	ran := 0
	for _, r := range expt.Runners() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		if err := render(r.Run(opt)); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	return nil
}
