// Command experiments regenerates every reproduction experiment of
// DESIGN.md (E1–E24 and finding F1) and prints the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-list] [-seed N] [-only E3,E4] [-format text|markdown|csv]
//	            [-parallel N] [-topology torus] [-timeout 5m] [-progress 1s]
//	            [-metrics-json -] [-cpuprofile FILE] [-memprofile FILE]
//
// A run stopped by -timeout still prints every requested table: sweeps cut
// short come back marked [PARTIAL: reason] with only their completed cells
// aggregated, and experiments that never started are stubbed, so truncation
// is never silent.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"asynccycle/internal/expt"
	"asynccycle/internal/metrics"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
)

func main() {
	// Ctrl-C / SIGTERM cancel the root context: cut-short sweeps print
	// [PARTIAL: cancelled] tables, unstarted experiments are stubbed, and
	// the process exits 0 — interrupted work is reported, not discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w, ew io.Writer) error {
	return runContext(context.Background(), args, w, ew)
}

func runContext(root context.Context, args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink parameter sweeps for a fast run")
	list := fs.Bool("list", false, "print the registered protocols the experiments draw on and exit")
	seed := fs.Int64("seed", 1, "random seed for workloads and schedulers")
	only := fs.String("only", "", "comma-separated experiment IDs to run (e.g. E3,E4,F1)")
	format := fs.String("format", "text", "output format: text, markdown, or csv")
	parallel := fs.Int("parallel", 0, "sweep-cell workers per experiment (0 = GOMAXPROCS, 1 = serial); tables are byte-identical at every setting")
	topology := fs.String("topology", "", "graph family for the topology-generic experiments (E22), e.g. torus or random:6:3; the cycle experiments ignore it")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); cut-short tables are marked PARTIAL")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	metricsJSON := fs.String("metrics-json", "", "write the final metrics snapshot as JSON to this file (\"-\" = stderr)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(ew, "experiments: profile:", err)
		}
	}()

	ctx := root
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(root, *timeout)
		defer cancel()
	}
	var met *metrics.Run
	if *progress > 0 || *metricsJSON != "" {
		met = metrics.NewRun()
	}
	if *progress > 0 {
		defer metrics.StartProgress(ew, *progress, met)()
	}
	if *metricsJSON != "" {
		defer func() {
			out := ew
			var f *os.File
			if *metricsJSON != "-" {
				var err error
				if f, err = os.Create(*metricsJSON); err != nil {
					fmt.Fprintln(ew, "experiments: metrics:", err)
					return
				}
				out = f
			}
			if err := met.Snapshot().WriteJSON(out); err != nil {
				fmt.Fprintln(ew, "experiments: metrics:", err)
			}
			if f != nil {
				f.Close()
			}
		}()
	}

	var render func(*expt.Table) error
	switch *format {
	case "text":
		render = func(t *expt.Table) error {
			_, err := t.WriteTo(w)
			return err
		}
	case "markdown":
		render = func(t *expt.Table) error { return t.WriteMarkdown(w) }
	case "csv":
		render = func(t *expt.Table) error { return t.WriteCSV(w) }
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	opt := expt.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel, Context: ctx, Metrics: met, Topology: *topology}
	ran := 0
	for _, r := range expt.Runners() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		var tb *expt.Table
		if ctx != nil && ctx.Err() != nil {
			// Budget exhausted before this experiment started: stub it so the
			// output still lists everything that was asked for.
			tb = &expt.Table{ID: r.ID, Title: "not run"}
			tb.MarkPartial(runctl.Reason(ctx), 0, 0)
		} else {
			tb = r.Run(opt)
		}
		if err := render(tb); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	return nil
}
