package main

import (
	"io"
	"testing"

	"asynccycle/internal/goldentest"
)

// TestGoldenDifferential pins the F1 table (the experiment whose dispatch
// switch the registry migration replaces) in both text and markdown. E13
// also dispatches on the algorithm name but runs real goroutine executions,
// so its measured columns are inherently nondeterministic and cannot be
// pinned byte-for-byte.
func TestGoldenDifferential(t *testing.T) {
	cases := [][]string{
		{"-only", "F1", "-quick", "-seed", "1"},
		{"-only", "F1", "-format", "markdown", "-seed", "1"},
	}
	for _, args := range cases {
		t.Run(goldentest.Name(args), func(t *testing.T) {
			goldentest.Check(t, args, func(a []string, w io.Writer) error {
				return run(a, w, io.Discard)
			})
		})
	}
}
