package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

// TestCancelledContextYieldsPartial pins the Ctrl-C contract: with the
// root context cancelled, every requested experiment still appears in the
// output — stubbed or cut short, marked PARTIAL — and the process exits 0.
func TestCancelledContextYieldsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b bytes.Buffer
	err := runContext(ctx, []string{"-quick", "-only", "E1,E5"}, &b, io.Discard)
	if err != nil {
		t.Fatalf("cancelled run must exit 0, got %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "PARTIAL") || !strings.Contains(out, "cancelled") {
		t.Fatalf("tables not marked PARTIAL/cancelled:\n%s", out)
	}
	for _, id := range []string{"E1", "E5"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment %s missing from cancelled output:\n%s", id, out)
		}
	}
}
