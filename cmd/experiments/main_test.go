package main

import (
	"strings"
	"testing"
)

func TestRunOnlyOneExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E5 — Cole–Vishkin") {
		t.Errorf("missing E5 table:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Error("-only leaked other experiments")
	}
}

func TestRunOnlyCaseInsensitive(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "e5, f1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E5 —") || !strings.Contains(out, "F1 —") {
		t.Errorf("expected E5 and F1:\n%s", out)
	}
}

func TestRunUnknownOnly(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E99"}, &b); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5", "-format", "markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "## E5 —") || !strings.Contains(out, "|---|") {
		t.Errorf("not markdown:\n%s", out)
	}
}

func TestRunCSVFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5", "-format", "csv"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", b.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,") {
		t.Errorf("csv header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "E5,") {
		t.Errorf("csv row wrong: %q", lines[1])
	}
}

func TestRunBadFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-format", "xml"}, &b); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
