package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunOnlyOneExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E5 — Cole–Vishkin") {
		t.Errorf("missing E5 table:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Error("-only leaked other experiments")
	}
}

func TestRunOnlyCaseInsensitive(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "e5, f1"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E5 —") || !strings.Contains(out, "F1 —") {
		t.Errorf("expected E5 and F1:\n%s", out)
	}
}

func TestRunUnknownOnly(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E99"}, &b, io.Discard); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5", "-format", "markdown"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "## E5 —") || !strings.Contains(out, "|---|") {
		t.Errorf("not markdown:\n%s", out)
	}
}

func TestRunCSVFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E5", "-format", "csv"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv too short:\n%s", b.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,") {
		t.Errorf("csv header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "E5,") {
		t.Errorf("csv row wrong: %q", lines[1])
	}
}

func TestRunBadFormat(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-format", "xml"}, &b, io.Discard); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

// A wall-clock budget cuts the suite short but never silently: tables that
// lost cells carry the [PARTIAL] marker, and the run still exits clean.
func TestRunTimeoutMarksPartial(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E2", "-timeout", "1ms"}, &b, io.Discard); err != nil {
		t.Fatalf("budgeted run should exit clean, got: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "E2 —") {
		t.Errorf("E2 table missing:\n%s", out)
	}
	if !strings.Contains(out, "[PARTIAL: timeout]") {
		t.Errorf("partial marker missing:\n%s", out)
	}
}

// -progress and -metrics-json surface sweep-cell counters on stderr.
func TestRunProgressAndMetricsJSON(t *testing.T) {
	var b, e strings.Builder
	if err := run([]string{"-quick", "-only", "E1", "-progress", "1ms", "-metrics-json", "-"}, &b, &e); err != nil {
		t.Fatal(err)
	}
	errOut := e.String()
	if !strings.Contains(errOut, "progress:") {
		t.Errorf("no progress lines on stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "\"cells_total\"") {
		t.Errorf("metrics JSON snapshot missing cell counters:\n%s", errOut)
	}
}
