package main

import (
	"bytes"
	"strings"
	"testing"

	"asynccycle/internal/protocol"
)

// TestListCoversRegistry pins the registry cross-check: the -list table of
// this binary names every registered protocol, so anything reachable from
// one CLI is visibly reachable from all of them.
func TestListCoversRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range protocol.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing protocol %q", name)
		}
	}
}
