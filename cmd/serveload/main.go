// Command serveload is the load generator for colorserved: it sustains a
// configurable number of concurrent mixed-protocol job requests (six,
// five, and fast on the sim engine plus bigsim-scale fast runs, with
// check and fuzz jobs sprinkled in), follows every accepted job to
// completion, and writes latency percentiles, throughput, and shed/error
// counts to BENCH_serve.json.
//
// Usage:
//
//	serveload [-addr host:port] [-requests 1000] [-concurrency 128]
//	          [-out BENCH_serve.json] [-seed 1]
//	          [-workers 4] [-queue 256] [-default-timeout 30s]
//
// Without -addr, serveload boots an in-process server (tuned by -workers,
// -queue, -default-timeout) and drives it over a real TCP loopback — the
// self-contained benchmark mode CI uses. Shed submissions (429) are the
// server's documented backpressure and are counted, not retried; the run
// fails if any *accepted* job is dropped (accepted ≠ completed+partial)
// or any submission errors outside the shed path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"asynccycle/internal/atomicio"
	"asynccycle/internal/runctl"
	"asynccycle/internal/serve"
	"asynccycle/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// workload is the mixed request set: mostly sim runs across the three
// core protocols, plus bigsim-scale runs and check/fuzz jobs so every
// capability surface is under load at once. Seeds are filled per request.
var workload = []string{
	`{"kind":"run","alg":"six","n":32,"sched":"random","seed":%d}`,
	`{"kind":"run","alg":"five","n":24,"sched":"rr","seed":%d}`,
	`{"kind":"run","alg":"fast","n":64,"sched":"random","seed":%d}`,
	`{"kind":"run","alg":"six","n":48,"sched":"burst","seed":%d}`,
	`{"kind":"run","alg":"fast","n":20000,"engine":"big","seed":%d}`,
	`{"kind":"run","alg":"fast","n":50000,"engine":"big","workers":2,"seed":%d}`,
	`{"kind":"check","alg":"fast","n":3,"seed":%d}`,
	`{"kind":"fuzz","alg":"fast","campaign":4,"seed":%d}`,
}

// Report is the BENCH_serve.json shape.
type Report struct {
	Addr        string  `json:"addr"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ElapsedSec  float64 `json:"elapsed_seconds"`
	Throughput  float64 `json:"jobs_per_second"` // completed jobs / elapsed

	Accepted  int64 `json:"accepted"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Completed int64 `json:"completed"`
	Partial   int64 `json:"partial"`
	Failed    int64 `json:"failed"`
	// Dropped counts accepted jobs that never reached a terminal state —
	// the drain/queue contract says this must be zero.
	Dropped int64 `json:"dropped"`

	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`
	E2EP50MS    float64 `json:"e2e_p50_ms"`
	E2EP99MS    float64 `json:"e2e_p99_ms"`

	ByKind map[string]int64 `json:"by_kind"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serveload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target colorserved address (empty = boot an in-process server)")
	requests := fs.Int("requests", 1000, "total job submissions")
	concurrency := fs.Int("concurrency", 128, "concurrent client goroutines")
	out := fs.String("out", "BENCH_serve.json", "report path (written atomically)")
	seed := fs.Int64("seed", 1, "base seed mixed into every request")
	workers := fs.Int("workers", 4, "in-process server: worker pool size")
	queue := fs.Int("queue", 256, "in-process server: queue depth")
	defaultTimeout := fs.Duration("default-timeout", 30*time.Second, "in-process server: default job budget")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 || *concurrency <= 0 {
		return fmt.Errorf("requests and concurrency must be positive")
	}

	base := "http://" + *addr
	if *addr == "" {
		s := serve.New(serve.Options{
			Workers:        *workers,
			QueueDepth:     *queue,
			DefaultTimeout: *defaultTimeout,
			MaxBudget:      runctl.Budget{Timeout: 4 * *defaultTimeout},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: s.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		defer s.Drain(0)
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(w, "serveload: in-process server on %s (workers=%d queue=%d)\n",
			ln.Addr(), *workers, *queue)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	rep := Report{
		Addr:        base,
		Requests:    *requests,
		Concurrency: *concurrency,
		ByKind:      map[string]int64{},
	}
	var mu sync.Mutex // guards rep counters and the latency slices
	var submitMS, e2eMS []float64

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				spec := fmt.Sprintf(workload[i%len(workload)], *seed+int64(i))
				oneRequest(client, base, spec, &mu, &rep, &submitMS, &e2eMS)
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.Throughput = float64(rep.Completed+rep.Partial) / rep.ElapsedSec
	}
	rep.Dropped = rep.Accepted - (rep.Completed + rep.Partial + rep.Failed)

	sort.Float64s(submitMS)
	sort.Float64s(e2eMS)
	rep.SubmitP50MS = stats.Percentile(submitMS, 0.50)
	rep.SubmitP99MS = stats.Percentile(submitMS, 0.99)
	rep.E2EP50MS = stats.Percentile(e2eMS, 0.50)
	rep.E2EP99MS = stats.Percentile(e2eMS, 0.99)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "serveload: %d requests in %.2fs: accepted=%d shed=%d errors=%d completed=%d partial=%d failed=%d dropped=%d\n",
		rep.Requests, rep.ElapsedSec, rep.Accepted, rep.Shed, rep.Errors,
		rep.Completed, rep.Partial, rep.Failed, rep.Dropped)
	fmt.Fprintf(w, "serveload: submit p50=%.2fms p99=%.2fms  e2e p50=%.2fms p99=%.2fms  throughput=%.1f jobs/s  -> %s\n",
		rep.SubmitP50MS, rep.SubmitP99MS, rep.E2EP50MS, rep.E2EP99MS, rep.Throughput, *out)

	if rep.Dropped != 0 {
		return fmt.Errorf("%d accepted jobs were dropped without a terminal state", rep.Dropped)
	}
	if rep.Errors != 0 {
		return fmt.Errorf("%d submissions errored outside the shed path", rep.Errors)
	}
	return nil
}

// oneRequest submits one job and, when accepted, follows it to its
// terminal state via the blocking ?wait=1 view.
func oneRequest(client *http.Client, base, spec string,
	mu *sync.Mutex, rep *Report, submitMS, e2eMS *[]float64) {
	t0 := time.Now()
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		mu.Lock()
		rep.Errors++
		mu.Unlock()
		return
	}
	submitLat := time.Since(t0)
	var view struct {
		ID   string `json:"id"`
		Kind string `json:"kind"`
	}
	decodeErr := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusAccepted:
		if decodeErr != nil || view.ID == "" {
			mu.Lock()
			rep.Errors++
			mu.Unlock()
			return
		}
	case http.StatusTooManyRequests:
		mu.Lock()
		rep.Shed++
		mu.Unlock()
		return
	default:
		mu.Lock()
		rep.Errors++
		mu.Unlock()
		return
	}

	mu.Lock()
	rep.Accepted++
	rep.ByKind[view.Kind]++
	*submitMS = append(*submitMS, float64(submitLat.Microseconds())/1000)
	mu.Unlock()

	final, err := client.Get(base + "/jobs/" + view.ID + "?wait=1")
	if err != nil {
		return // counted as dropped via the accepted/terminal delta
	}
	var done struct {
		Status  string `json:"status"`
		Outcome string `json:"outcome"`
	}
	decodeErr = json.NewDecoder(final.Body).Decode(&done)
	final.Body.Close()
	if decodeErr != nil || done.Status != serve.StatusDone {
		return
	}
	mu.Lock()
	switch done.Outcome {
	case serve.OutcomeOK:
		rep.Completed++
	case serve.OutcomePartial:
		rep.Partial++
	default:
		rep.Failed++
	}
	*e2eMS = append(*e2eMS, float64(time.Since(t0).Microseconds())/1000)
	mu.Unlock()
}
