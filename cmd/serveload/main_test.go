package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSmallBurst drives the in-process mode end to end: a burst of
// mixed-protocol requests against a deliberately small pool, verifying
// the report invariants — every accepted job reaches a terminal state
// (zero dropped), sheds are counted separately, and the JSON lands on
// disk with sane percentiles.
func TestLoadSmallBurst(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := run([]string{
		"-requests", "64",
		"-concurrency", "16",
		"-workers", "2",
		"-queue", "8", // small on purpose: force some 429s
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("serveload: %v\n%s", err, buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, data)
	}
	if rep.Requests != 64 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if rep.Accepted+rep.Shed+rep.Errors != 64 {
		t.Fatalf("accounting leak: %+v", rep)
	}
	if rep.Dropped != 0 || rep.Errors != 0 {
		t.Fatalf("dropped/errored jobs: %+v", rep)
	}
	if rep.Accepted == 0 || rep.Completed+rep.Partial == 0 {
		t.Fatalf("nothing ran: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("jobs failed under load: %+v", rep)
	}
	if rep.E2EP99MS < rep.E2EP50MS || rep.E2EP50MS <= 0 {
		t.Fatalf("percentiles inconsistent: %+v", rep)
	}
	if len(rep.ByKind) < 2 {
		t.Fatalf("workload not mixed: %+v", rep.ByKind)
	}
}
