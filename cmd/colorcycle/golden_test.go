package main

import (
	"io"
	"testing"

	"asynccycle/internal/goldentest"
)

// TestGoldenDifferential pins the deterministic-engine output of every
// algorithm across the full prior flag matrix (scheduler, identifier
// assignment, seed, crashes, tracing). The registry migration must keep
// these bytes identical for six|five|fast. The -concurrent path is excluded:
// its interleaving comes from the Go runtime and is inherently
// nondeterministic run to run.
func TestGoldenDifferential(t *testing.T) {
	for _, alg := range []string{"six", "five", "fast"} {
		for _, rest := range [][]string{
			{"-n", "12", "-seed", "3"},
			{"-n", "10", "-ids", "increasing", "-sched", "sync", "-seed", "1"},
			{"-n", "10", "-ids", "zigzag", "-sched", "rr", "-seed", "2", "-crash", "0.3"},
			{"-n", "8", "-ids", "spaced-increasing", "-sched", "alt", "-seed", "5", "-trace"},
			{"-n", "9", "-sched", "burst", "-seed", "7", "-crash", "0.2"},
			{"-n", "8", "-sched", "one", "-seed", "4"},
			{"-n", "40", "-ids", "decreasing", "-sched", "random", "-seed", "6"},
		} {
			args := append([]string{"-alg", alg}, rest...)
			t.Run(goldentest.Name(args), func(t *testing.T) {
				goldentest.Check(t, args, func(a []string, w io.Writer) error {
					return run(a, w)
				})
			})
		}
	}
}
