// Command colorcycle runs one registered protocol on its topology and
// prints the resulting outputs, per-process round counts, and the
// protocol's verification verdicts.
//
// Usage:
//
//	colorcycle [-alg fast|five|six|...] [-list] [-n 100]
//	           [-ids random|increasing|zigzag|...]
//	           [-sched sync|rr|random|one|alt|burst] [-seed 1]
//	           [-crash 0.2] [-trace] [-concurrent]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -list prints the table of registered protocols and exits. With
// -concurrent the run uses one goroutine per node (the -sched and -trace
// flags do not apply: scheduling comes from the Go runtime); protocols
// without a concurrent runtime reject it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asynccycle/internal/conc"
	"asynccycle/internal/ids"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "colorcycle:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("colorcycle", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "protocol to run (see -list)")
	list := fs.Bool("list", false, "print the registered protocols and exit")
	n := fs.Int("n", 100, "instance size (cycle length for the cycle protocols)")
	assign := fs.String("ids", "random", "identifier assignment: random|increasing|decreasing|zigzag|spaced-increasing")
	sched := fs.String("sched", "random", "scheduler: sync|rr|random|one|alt|burst")
	seed := fs.Int64("seed", 1, "random seed")
	crash := fs.Float64("crash", 0, "fraction of processes to crash at adversarial times")
	withTrace := fs.Bool("trace", false, "print the execution trace")
	concurrent := fs.Bool("concurrent", false, "run with one goroutine per node instead of the deterministic engine")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "colorcycle: profile:", err)
		}
	}()

	d, err := protocol.Lookup(*alg)
	if err != nil {
		return err
	}
	g, err := d.Topology(*n)
	if err != nil {
		return err
	}
	assignment, err := parseAssignment(*assign)
	if err != nil {
		return err
	}
	xs, err := ids.Generate(assignment, *n, *seed)
	if err != nil {
		return err
	}
	s, err := parseScheduler(*sched, *seed)
	if err != nil {
		return err
	}

	// Crash plan: deterministic in the seed, mirroring the historical CLI.
	crashes := map[int]int{}
	count := int(*crash * float64(g.N()))
	for i := 0; i < count; i++ {
		node := (i*7919 + int(*seed)) % g.N()
		crashes[node] = i % 5
	}

	verdict := func(res sim.Result) {
		if d.Checks != nil {
			for _, c := range d.Checks(g) {
				report(w, c.Name, c.Check(res))
			}
			return
		}
		report(w, "validity", d.Validity(g, res))
	}

	if *concurrent {
		if d.RunConc == nil {
			return fmt.Errorf("algorithm %q has no concurrent runtime", *alg)
		}
		res, err := d.RunConc(xs, conc.Options{CrashAfter: crashes, Yield: true, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "graph=%s runtime=goroutines\n", g.Name())
		fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
			res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
		printColors(w, res)
		verdict(res)
		return nil
	}

	var traceTo io.Writer
	if *withTrace {
		traceTo = w
	}
	res, _, err := d.Run(xs, protocol.RunOptions{
		Scheduler: s,
		Crashes:   crashes,
		MaxSteps:  1000*g.N() + 100_000,
		TraceText: traceTo,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s scheduler=%s steps=%d\n", g.Name(), s.Name(), res.Steps)
	fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
		res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
	printColors(w, res)
	verdict(res)
	return nil
}

func crashedCount(res sim.Result) int {
	c := 0
	for _, b := range res.Crashed {
		if b {
			c++
		}
	}
	return c
}

func printColors(w io.Writer, res sim.Result) {
	limit := len(res.Outputs)
	if limit > 32 {
		limit = 32
	}
	fmt.Fprint(w, "colors: ")
	for i := 0; i < limit; i++ {
		if res.Done[i] {
			fmt.Fprintf(w, "%d ", res.Outputs[i])
		} else {
			fmt.Fprint(w, "× ")
		}
	}
	if limit < len(res.Outputs) {
		fmt.Fprintf(w, "… (%d more)", len(res.Outputs)-limit)
	}
	fmt.Fprintln(w)
}

func report(w io.Writer, what string, err error) {
	if err != nil {
		fmt.Fprintf(w, "FAIL %s: %v\n", what, err)
	} else {
		fmt.Fprintf(w, "ok   %s\n", what)
	}
}

func parseAssignment(s string) (ids.Assignment, error) {
	for _, a := range ids.All() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown assignment %q", s)
}

func parseScheduler(s string, seed int64) (schedule.Scheduler, error) {
	switch s {
	case "sync":
		return schedule.Synchronous{}, nil
	case "rr":
		return schedule.NewRoundRobin(1), nil
	case "random":
		return schedule.NewRandomSubset(0.4, seed), nil
	case "one":
		return schedule.NewRandomOne(seed), nil
	case "alt":
		return schedule.Alternating{}, nil
	case "burst":
		return schedule.NewBurst(4), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", s)
	}
}
