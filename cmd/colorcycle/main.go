// Command colorcycle runs one registered protocol on its topology and
// prints the resulting outputs, per-process round counts, and the
// protocol's verification verdicts.
//
// Usage:
//
//	colorcycle [-alg fast|five|six|...] [-list] [-n 100]
//	           [-topology cycle|path|complete|torus|random:Δ:seed]
//	           [-ids random|increasing|zigzag|...]
//	           [-sched sync|rr|random|one|alt|burst] [-seed 1]
//	           [-crash 0.2] [-trace] [-concurrent]
//	           [-big] [-workers 1]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -list prints the table of registered protocols and exits. With
// -concurrent the run uses one goroutine per node (the -sched and -trace
// flags do not apply: scheduling comes from the Go runtime); protocols
// without a concurrent runtime reject it.
//
// -topology retargets the protocol onto another registered graph family
// (append "+shuffled:SEED" to permute neighbor orders). Only families the
// protocol declares are accepted; off-family runs drop cycle-specific
// round bounds and the "big" engine, which is ring-indexed.
//
// -big selects the struct-of-arrays engine for protocols with the "big"
// capability — the path for large cycles (n up to 10⁶ and beyond), with
// incremental safety checking instead of a final O(n) scan per verdict
// line. -workers k > 1 additionally runs the sharded parallel executor
// under its canonical sharded round-robin schedule (-sched is then
// ignored). -trace and -concurrent do not combine with -big.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asynccycle/internal/bigsim"
	"asynccycle/internal/conc"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "colorcycle:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("colorcycle", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "protocol to run (see -list)")
	list := fs.Bool("list", false, "print the registered protocols and exit")
	n := fs.Int("n", 100, "instance size (cycle length for the cycle protocols)")
	topology := fs.String("topology", "", "graph family to run on (cycle|path|complete|torus|random:Δ[:seed][+shuffled:SEED]); empty = the protocol's native topology")
	assign := fs.String("ids", "random", "identifier assignment: random|increasing|decreasing|zigzag|spaced-increasing")
	sched := fs.String("sched", "random", "scheduler: sync|rr|random|one|alt|burst")
	seed := fs.Int64("seed", 1, "random seed")
	crash := fs.Float64("crash", 0, "fraction of processes to crash at adversarial times")
	withTrace := fs.Bool("trace", false, "print the execution trace")
	concurrent := fs.Bool("concurrent", false, "run with one goroutine per node instead of the deterministic engine")
	big := fs.Bool("big", false, "run on the struct-of-arrays large-cycle engine")
	workers := fs.Int("workers", 1, "with -big: >1 runs the sharded parallel executor")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "colorcycle: profile:", err)
		}
	}()

	d, err := protocol.Lookup(*alg)
	if err != nil {
		return err
	}
	d, err = protocol.WithTopology(d, *topology)
	if err != nil {
		return err
	}
	if d.FixN != nil {
		*n = d.FixN(*n)
	}
	g, err := d.Topology(*n)
	if err != nil {
		return err
	}
	assignment, err := ids.Parse(*assign)
	if err != nil {
		return err
	}
	xs, err := ids.Generate(assignment, *n, *seed)
	if err != nil {
		return err
	}
	s, err := schedule.Parse(*sched, *seed)
	if err != nil {
		return err
	}

	// Crash plan: deterministic in the seed, mirroring the historical CLI.
	crashes := map[int]int{}
	count := int(*crash * float64(g.N()))
	for i := 0; i < count; i++ {
		node := (i*7919 + int(*seed)) % g.N()
		crashes[node] = i % 5
	}

	verdict := func(res sim.Result) {
		if d.Contract != nil && d.Contract.Labeled() {
			// Contract-first protocols: one verdict line per contract
			// property, labeled with its provenance.
			for _, p := range d.Contract.Properties() {
				report(w, fmt.Sprintf("contract=%s property=%s", d.Contract.ContractName(), p.Name), p.Check(g, res))
			}
			return
		}
		if d.Checks != nil {
			for _, c := range d.Checks(g) {
				report(w, c.Name, c.Check(res))
			}
			return
		}
		report(w, "validity", d.Validity(g, res))
	}

	if *big {
		if *withTrace || *concurrent {
			return fmt.Errorf("-big does not combine with -trace or -concurrent")
		}
		if err := protocol.CheckBigTopology(*topology); err != nil {
			return err
		}
		return runBig(w, d, xs, *sched, *seed, *workers, crashes, g, verdict)
	}

	if *concurrent {
		if d.RunConc == nil {
			return fmt.Errorf("algorithm %q has no concurrent runtime", *alg)
		}
		res, err := d.RunConc(xs, conc.Options{CrashAfter: crashes, Yield: true, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "graph=%s runtime=goroutines\n", g.Name())
		fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
			res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
		printColors(w, res)
		verdict(res)
		return nil
	}

	var traceTo io.Writer
	if *withTrace {
		traceTo = w
	}
	res, _, err := d.Run(xs, protocol.RunOptions{
		Scheduler: s,
		Crashes:   crashes,
		MaxSteps:  1000*g.N() + 100_000,
		TraceText: traceTo,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s scheduler=%s steps=%d\n", g.Name(), s.Name(), res.Steps)
	fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
		res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
	printColors(w, res)
	verdict(res)
	return nil
}

// runBig executes on the struct-of-arrays engine: native zero-alloc
// schedulers, incremental safety checking during the run, and optionally
// the sharded parallel executor. The printed surface matches the
// deterministic path so existing tooling parses both.
func runBig(w io.Writer, d *protocol.Descriptor, xs []int, sched string, seed int64, workers int,
	crashes map[int]int, g graph.Graph, verdict func(sim.Result)) error {
	if d.BigKernel == nil {
		return fmt.Errorf("algorithm %q has no big-run surface (capability \"big\")", d.Name)
	}
	k, err := d.BigKernel(xs)
	if err != nil {
		return err
	}
	e := bigsim.New(k)
	e.SetIncremental(true)
	for i, c := range crashes {
		if i < 0 || i >= g.N() {
			return fmt.Errorf("crash index %d out of range", i)
		}
		e.CrashAfter(i, c)
	}
	maxSteps := int64(1000*g.N() + 100_000)

	var schedName string
	if workers > 1 {
		schedName = fmt.Sprintf("sharded-rr(%d)", workers)
		reason, err := e.RunSharded(nil, workers, runctl.Budget{MaxSteps: int(maxSteps)})
		if err != nil {
			return err
		}
		if reason != runctl.StopNone {
			return fmt.Errorf("sharded run stopped early: %s", reason)
		}
	} else {
		s, err := bigsim.ParseSched(sched, seed)
		if err != nil {
			return err
		}
		schedName = s.Name()
		if err := e.Run(s, maxSteps); err != nil {
			return err
		}
	}

	res := e.Result()
	sum := e.Summarize()
	fmt.Fprintf(w, "graph=%s scheduler=%s steps=%d engine=big workers=%d bytes/node=%d\n",
		g.Name(), schedName, res.Steps, workers, sum.BytesPerNode)
	fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
		sum.Terminated, g.N(), sum.Crashed, sum.MaxRounds)
	printColors(w, res)
	verdict(res)
	return nil
}

func crashedCount(res sim.Result) int {
	c := 0
	for _, b := range res.Crashed {
		if b {
			c++
		}
	}
	return c
}

func printColors(w io.Writer, res sim.Result) {
	limit := len(res.Outputs)
	if limit > 32 {
		limit = 32
	}
	fmt.Fprint(w, "colors: ")
	for i := 0; i < limit; i++ {
		switch {
		case res.Done[i]:
			fmt.Fprintf(w, "%d ", res.Outputs[i])
		case res.Values != nil:
			// Stabilizing protocols never terminate: the published register
			// value is the process's current color.
			fmt.Fprintf(w, "%d ", res.Values[i])
		default:
			fmt.Fprint(w, "× ")
		}
	}
	if limit < len(res.Outputs) {
		fmt.Fprintf(w, "… (%d more)", len(res.Outputs)-limit)
	}
	fmt.Fprintln(w)
}

func report(w io.Writer, what string, err error) {
	if err != nil {
		fmt.Fprintf(w, "FAIL %s: %v\n", what, err)
	} else {
		fmt.Fprintf(w, "ok   %s\n", what)
	}
}
