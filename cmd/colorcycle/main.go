// Command colorcycle runs one of the paper's wait-free coloring algorithms
// on a cycle and prints the resulting coloring, per-process round counts,
// and the verification verdicts.
//
// Usage:
//
//	colorcycle [-alg fast|five|six] [-n 100] [-ids random|increasing|zigzag]
//	           [-sched sync|rr|random|one|alt|burst] [-seed 1]
//	           [-crash 0.2] [-trace] [-concurrent]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// With -concurrent the run uses one goroutine per node (the -sched and
// -trace flags do not apply: scheduling comes from the Go runtime).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asynccycle/internal/check"
	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/prof"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "colorcycle:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("colorcycle", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "algorithm: fast (Alg 3), five (Alg 2), six (Alg 1)")
	n := fs.Int("n", 100, "cycle length (≥ 3)")
	assign := fs.String("ids", "random", "identifier assignment: random|increasing|decreasing|zigzag|spaced-increasing")
	sched := fs.String("sched", "random", "scheduler: sync|rr|random|one|alt|burst")
	seed := fs.Int64("seed", 1, "random seed")
	crash := fs.Float64("crash", 0, "fraction of processes to crash at adversarial times")
	withTrace := fs.Bool("trace", false, "print the execution trace")
	concurrent := fs.Bool("concurrent", false, "run with one goroutine per node instead of the deterministic engine")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "colorcycle: profile:", err)
		}
	}()

	g, err := graph.Cycle(*n)
	if err != nil {
		return err
	}
	assignment, err := parseAssignment(*assign)
	if err != nil {
		return err
	}
	xs, err := ids.Generate(assignment, *n, *seed)
	if err != nil {
		return err
	}
	s, err := parseScheduler(*sched, *seed)
	if err != nil {
		return err
	}

	if *concurrent {
		switch *alg {
		case "fast":
			return executeConcurrent(w, g, core.NewFastNodes(xs), *crash, *seed, verdictFive(w, g))
		case "five":
			return executeConcurrent(w, g, core.NewFiveNodes(xs), *crash, *seed, verdictFive(w, g))
		case "six":
			return executeConcurrent(w, g, core.NewPairNodes(xs), *crash, *seed, verdictSix(w, g))
		default:
			return fmt.Errorf("unknown algorithm %q", *alg)
		}
	}
	switch *alg {
	case "fast":
		return execute(w, g, core.NewFastNodes(xs), s, *crash, *seed, *withTrace, verdictFive(w, g))
	case "five":
		return execute(w, g, core.NewFiveNodes(xs), s, *crash, *seed, *withTrace, verdictFive(w, g))
	case "six":
		return execute(w, g, core.NewPairNodes(xs), s, *crash, *seed, *withTrace, verdictSix(w, g))
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
}

// executeConcurrent runs the goroutine runtime instead of the
// deterministic engine.
func executeConcurrent[V any](w io.Writer, g graph.Graph, nodes []sim.Node[V], crash float64, seed int64, verdict func(sim.Result)) error {
	crashes := map[int]int{}
	count := int(crash * float64(g.N()))
	for i := 0; i < count; i++ {
		node := (i*7919 + int(seed)) % g.N()
		crashes[node] = i % 5
	}
	res, err := conc.Run(g, nodes, conc.Options{CrashAfter: crashes, Yield: true, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s runtime=goroutines\n", g.Name())
	fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
		res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
	printColors(w, res)
	verdict(res)
	return nil
}

func execute[V any](w io.Writer, g graph.Graph, nodes []sim.Node[V], s schedule.Scheduler, crash float64, seed int64, withTrace bool, verdict func(sim.Result)) error {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		return err
	}
	count := int(crash * float64(g.N()))
	for i := 0; i < count; i++ {
		node := (i*7919 + int(seed)) % g.N()
		e.CrashAfter(node, i%5)
	}
	var rec *trace.Recorder[V]
	if withTrace {
		rec = &trace.Recorder[V]{}
		e.AddHook(rec.Hook())
	}
	res, err := e.Run(s, 1000*g.N()+100_000)
	if err != nil {
		return err
	}
	if rec != nil {
		if err := rec.WriteText(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "graph=%s scheduler=%s steps=%d\n", g.Name(), s.Name(), res.Steps)
	fmt.Fprintf(w, "terminated=%d/%d crashed=%d max-rounds=%d\n",
		res.TerminatedCount(), g.N(), crashedCount(res), res.MaxActivations())
	printColors(w, res)
	verdict(res)
	return nil
}

func crashedCount(res sim.Result) int {
	c := 0
	for _, b := range res.Crashed {
		if b {
			c++
		}
	}
	return c
}

func printColors(w io.Writer, res sim.Result) {
	limit := len(res.Outputs)
	if limit > 32 {
		limit = 32
	}
	fmt.Fprint(w, "colors: ")
	for i := 0; i < limit; i++ {
		if res.Done[i] {
			fmt.Fprintf(w, "%d ", res.Outputs[i])
		} else {
			fmt.Fprint(w, "× ")
		}
	}
	if limit < len(res.Outputs) {
		fmt.Fprintf(w, "… (%d more)", len(res.Outputs)-limit)
	}
	fmt.Fprintln(w)
}

func verdictFive(w io.Writer, g graph.Graph) func(sim.Result) {
	return func(res sim.Result) {
		report(w, "proper coloring", check.ProperColoring(g, res))
		report(w, "palette {0..4}", check.PaletteRange(res, 5))
		report(w, "survivors terminated", check.SurvivorsTerminated(res))
	}
}

func verdictSix(w io.Writer, g graph.Graph) func(sim.Result) {
	return func(res sim.Result) {
		report(w, "proper coloring", check.ProperColoring(g, res))
		report(w, "pair palette a+b≤2", check.PairPalette(res, 2))
		report(w, "survivors terminated", check.SurvivorsTerminated(res))
	}
}

func report(w io.Writer, what string, err error) {
	if err != nil {
		fmt.Fprintf(w, "FAIL %s: %v\n", what, err)
	} else {
		fmt.Fprintf(w, "ok   %s\n", what)
	}
}

func parseAssignment(s string) (ids.Assignment, error) {
	for _, a := range ids.All() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown assignment %q", s)
}

func parseScheduler(s string, seed int64) (schedule.Scheduler, error) {
	switch s {
	case "sync":
		return schedule.Synchronous{}, nil
	case "rr":
		return schedule.NewRoundRobin(1), nil
	case "random":
		return schedule.NewRandomSubset(0.4, seed), nil
	case "one":
		return schedule.NewRandomOne(seed), nil
	case "alt":
		return schedule.Alternating{}, nil
	case "burst":
		return schedule.NewBurst(4), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", s)
	}
}
