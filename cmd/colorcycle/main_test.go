package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "20"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"graph=C20", "terminated=20/20", "ok   proper coloring", "ok   palette {0..4}"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		var b strings.Builder
		if err := run([]string{"-alg", alg, "-n", "12", "-sched", "rr"}, &b); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if strings.Contains(b.String(), "FAIL") {
			t.Errorf("%s: verification failed:\n%s", alg, b.String())
		}
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, sched := range []string{"sync", "rr", "random", "one", "alt", "burst"} {
		var b strings.Builder
		if err := run([]string{"-sched", sched, "-n", "10"}, &b); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
	}
}

func TestRunAllAssignments(t *testing.T) {
	for _, a := range []string{"random", "increasing", "decreasing", "zigzag", "spaced-increasing"} {
		var b strings.Builder
		if err := run([]string{"-ids", a, "-n", "10"}, &b); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}

func TestRunWithCrashes(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "30", "-crash", "0.3", "-sched", "one"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ok   survivors terminated") {
		t.Errorf("missing survivor verdict:\n%s", out)
	}
	if !strings.Contains(out, "×") && !strings.Contains(out, "crashed=0") {
		t.Errorf("expected crashed nodes or zero-crash note:\n%s", out)
	}
}

func TestRunWithTrace(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "5", "-trace", "-sched", "rr"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "t=1") {
		t.Errorf("trace output missing:\n%s", b.String())
	}
}

func TestRunConcurrent(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		var b strings.Builder
		if err := run([]string{"-alg", alg, "-n", "25", "-concurrent", "-crash", "0.2"}, &b); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out := b.String()
		if !strings.Contains(out, "runtime=goroutines") {
			t.Errorf("%s: missing runtime marker:\n%s", alg, out)
		}
		if strings.Contains(out, "FAIL") {
			t.Errorf("%s: verification failed:\n%s", alg, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alg", "bogus"},
		{"-n", "2"},
		{"-ids", "bogus"},
		{"-sched", "bogus"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
