package main

import (
	"errors"
	"strings"
	"testing"

	"asynccycle/internal/protocol"
)

// TestRunTopologyGeneralGraph runs dp1 on a random Δ-bounded graph through
// the CLI surface — the smoke path CI exercises — and checks every verdict
// line comes back ok.
func TestRunTopologyGeneralGraph(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "dp1", "-topology", "random:4:1", "-n", "20",
		"-sched", "random", "-seed", "3", "-crash", "0.1"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "graph=G(20,Δ≤4,seed=1)") {
		t.Errorf("header does not name the random graph:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("verdict failed:\n%s", out)
	}
	for _, want := range []string{"ok   proper coloring", "ok   palette"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTopologyFixN: torus sizes round to the nearest factorable grid
// instead of erroring out.
func TestRunTopologyFixN(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "six", "-topology", "torus", "-n", "10", "-sched", "rr", "-seed", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "graph=T3x4") {
		t.Errorf("torus -n 10 did not round to T3x4:\n%s", b.String())
	}
}

// TestRunBigRefusesTopology: the struct-of-arrays engine is ring-indexed,
// so -big must refuse any non-cycle (or shuffled-cycle) topology with the
// typed sentinel rather than running on a misinterpreted graph.
func TestRunBigRefusesTopology(t *testing.T) {
	for _, spec := range []string{"torus", "random:4:1", "cycle+shuffled:2"} {
		var b strings.Builder
		err := run([]string{"-alg", "six", "-topology", spec, "-n", "12", "-big"}, &b)
		if !errors.Is(err, protocol.ErrBigTopology) {
			t.Errorf("-big -topology %s: err = %v, want protocol.ErrBigTopology", spec, err)
		}
	}
	// The plain cycle still reaches the big engine.
	var b strings.Builder
	if err := run([]string{"-alg", "six", "-topology", "cycle", "-n", "64", "-big"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "engine=big") {
		t.Errorf("explicit -topology cycle lost the big engine:\n%s", b.String())
	}
}

// TestRunTopologyRefusals: undeclared families fail loudly with the typed
// sentinel before any instance is built.
func TestRunTopologyRefusals(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "five", "-topology", "complete", "-n", "8"}, &b)
	if !errors.Is(err, protocol.ErrTopology) {
		t.Errorf("five on complete: err = %v, want protocol.ErrTopology", err)
	}
}
