package main

import (
	"strings"
	"testing"
)

// TestRunBigMatchesSim pins the CLI surface of the big engine against the
// deterministic engine: identical instance, scheduler family, seed, and
// crash plan must print the same terminated/colors/verdict lines (only the
// header line differs — it carries the engine marker).
func TestRunBigMatchesSim(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		for _, sched := range []string{"sync", "rr", "random", "one", "alt", "burst"} {
			base := []string{"-alg", alg, "-n", "48", "-sched", sched, "-seed", "3", "-crash", "0.2"}
			var ref, big strings.Builder
			if err := run(base, &ref); err != nil {
				t.Fatalf("%s/%s ref: %v", alg, sched, err)
			}
			if err := run(append(base, "-big"), &big); err != nil {
				t.Fatalf("%s/%s big: %v", alg, sched, err)
			}
			refLines := strings.SplitN(ref.String(), "\n", 2)
			bigLines := strings.SplitN(big.String(), "\n", 2)
			if refLines[1] != bigLines[1] {
				t.Errorf("%s/%s: outputs diverge\n--- sim ---\n%s\n--- big ---\n%s",
					alg, sched, ref.String(), big.String())
			}
			if !strings.Contains(bigLines[0], "engine=big") {
				t.Errorf("%s/%s: header missing engine marker: %s", alg, sched, bigLines[0])
			}
		}
	}
}

// TestRunBigSharded exercises the parallel executor through the CLI.
func TestRunBigSharded(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "fast", "-n", "512", "-big", "-workers", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"scheduler=sharded-rr(4)", "terminated=512/512", "ok   proper coloring"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBigErrors pins the flag incompatibilities and the capability gate.
func TestRunBigErrors(t *testing.T) {
	cases := [][]string{
		{"-big", "-trace", "-n", "10"},
		{"-big", "-concurrent", "-n", "10"},
		{"-big", "-alg", "local-cv", "-n", "10"}, // no "big" capability
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
