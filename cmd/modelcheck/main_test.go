package main

import (
	"strings"
	"testing"
)

func TestRunVerifiesAlgorithms(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		var b strings.Builder
		if err := run([]string{"-alg", alg, "-n", "3", "-worst"}, &b); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out := b.String()
		if !strings.Contains(out, "cycle=false") {
			t.Errorf("%s: expected wait-freedom:\n%s", alg, out)
		}
		if !strings.Contains(out, "exact worst-case rounds") {
			t.Errorf("%s: missing worst-case analysis:\n%s", alg, out)
		}
	}
}

func TestRunFindsMISLivelock(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "mis-greedy", "-n", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("greedy MIS livelock not reported:\n%s", b.String())
	}
}

func TestRunFindsMISViolation(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "mis-impatient", "-n", "3"}, &b)
	if err == nil {
		t.Fatal("impatient MIS should fail verification")
	}
	if !strings.Contains(b.String(), "violation:") {
		t.Errorf("violation not printed:\n%s", b.String())
	}
}

func TestRunSimultaneousModeFindsF1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "five", "-n", "3", "-mode", "simultaneous"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("F1 livelock not reported in simultaneous mode:\n%s", b.String())
	}
}

func TestRunRenaming(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "renaming", "-n", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cycle=false") {
		t.Errorf("renaming should be wait-free:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alg", "bogus"},
		{"-mode", "bogus"},
		{"-alg", "fast", "-n", "2"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
