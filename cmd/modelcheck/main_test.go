package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunVerifiesAlgorithms(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		var b strings.Builder
		if err := run([]string{"-alg", alg, "-n", "3", "-worst"}, &b, io.Discard); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out := b.String()
		if !strings.Contains(out, "cycle=false") {
			t.Errorf("%s: expected wait-freedom:\n%s", alg, out)
		}
		if !strings.Contains(out, "exact worst-case rounds") {
			t.Errorf("%s: missing worst-case analysis:\n%s", alg, out)
		}
	}
}

func TestRunFindsMISLivelock(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "mis-greedy", "-n", "3"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("greedy MIS livelock not reported:\n%s", b.String())
	}
}

func TestRunFindsMISViolation(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "mis-impatient", "-n", "3"}, &b, io.Discard)
	if err == nil {
		t.Fatal("impatient MIS should fail verification")
	}
	if !strings.Contains(b.String(), "violation:") {
		t.Errorf("violation not printed:\n%s", b.String())
	}
}

func TestRunSimultaneousModeFindsF1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "five", "-n", "3", "-mode", "simultaneous"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("F1 livelock not reported in simultaneous mode:\n%s", b.String())
	}
}

func TestRunRenaming(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "renaming", "-n", "3"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cycle=false") {
		t.Errorf("renaming should be wait-free:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alg", "bogus"},
		{"-mode", "bogus"},
		{"-alg", "fast", "-n", "2"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b, io.Discard); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// The acceptance smoke: a wall-clock budget on an oversized instance must
// exit 0 (nil error) with a report explicitly marked PARTIAL.
func TestRunTimeoutYieldsPartialReport(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "fast", "-n", "5", "-timeout", "1ms"}, &b, io.Discard); err != nil {
		t.Fatalf("budgeted run should exit clean, got: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "PARTIAL") {
		t.Errorf("partial report not marked:\n%s", out)
	}
	if !strings.Contains(out, "timeout") {
		t.Errorf("stop reason missing:\n%s", out)
	}
}

// -progress and -metrics-json both write to stderr ("-" selects it for the
// JSON snapshot); the progress stop always prints a final line.
func TestRunProgressAndMetricsJSON(t *testing.T) {
	var b, e strings.Builder
	if err := run([]string{"-alg", "five", "-n", "3", "-progress", "1ms", "-metrics-json", "-"}, &b, &e); err != nil {
		t.Fatal(err)
	}
	errOut := e.String()
	if !strings.Contains(errOut, "progress:") {
		t.Errorf("no progress lines on stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "\"states\"") || !strings.Contains(errOut, "\"states_per_sec\"") {
		t.Errorf("metrics JSON snapshot missing:\n%s", errOut)
	}
}

// -max-states is a budget, not a failure: the truncated report is labeled
// and the exit is clean.
func TestRunMaxStatesPartial(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "fast", "-n", "4", "-max-states", "100"}, &b, io.Discard); err != nil {
		t.Fatalf("state-budgeted run should exit clean, got: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "PARTIAL") {
		t.Errorf("partial report not marked:\n%s", b.String())
	}
}
