package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunVerifiesAlgorithms(t *testing.T) {
	for _, alg := range []string{"fast", "five", "six"} {
		var b strings.Builder
		if err := run([]string{"-alg", alg, "-n", "3", "-worst"}, &b, io.Discard); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out := b.String()
		if !strings.Contains(out, "cycle=false") {
			t.Errorf("%s: expected wait-freedom:\n%s", alg, out)
		}
		if !strings.Contains(out, "exact worst-case rounds") {
			t.Errorf("%s: missing worst-case analysis:\n%s", alg, out)
		}
	}
}

func TestRunFindsMISLivelock(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "mis-greedy", "-n", "3"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("greedy MIS livelock not reported:\n%s", b.String())
	}
}

func TestRunFindsMISViolation(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "mis-impatient", "-n", "3"}, &b, io.Discard)
	if err == nil {
		t.Fatal("impatient MIS should fail verification")
	}
	if !strings.Contains(b.String(), "violation:") {
		t.Errorf("violation not printed:\n%s", b.String())
	}
}

func TestRunSimultaneousModeFindsF1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "five", "-n", "3", "-mode", "simultaneous"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "NOT WAIT-FREE") {
		t.Errorf("F1 livelock not reported in simultaneous mode:\n%s", b.String())
	}
}

func TestRunRenaming(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "renaming", "-n", "3"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cycle=false") {
		t.Errorf("renaming should be wait-free:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alg", "bogus"},
		{"-mode", "bogus"},
		{"-alg", "fast", "-n", "2"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b, io.Discard); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// The acceptance smoke: a wall-clock budget on an oversized instance must
// exit 0 (nil error) with a report explicitly marked PARTIAL.
func TestRunTimeoutYieldsPartialReport(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "fast", "-n", "5", "-timeout", "1ms"}, &b, io.Discard); err != nil {
		t.Fatalf("budgeted run should exit clean, got: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "PARTIAL") {
		t.Errorf("partial report not marked:\n%s", out)
	}
	if !strings.Contains(out, "timeout") {
		t.Errorf("stop reason missing:\n%s", out)
	}
}

// -progress and -metrics-json both write to stderr ("-" selects it for the
// JSON snapshot); the progress stop always prints a final line.
func TestRunProgressAndMetricsJSON(t *testing.T) {
	var b, e strings.Builder
	if err := run([]string{"-alg", "five", "-n", "3", "-progress", "1ms", "-metrics-json", "-"}, &b, &e); err != nil {
		t.Fatal(err)
	}
	errOut := e.String()
	if !strings.Contains(errOut, "progress:") {
		t.Errorf("no progress lines on stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "\"states\"") || !strings.Contains(errOut, "\"states_per_sec\"") {
		t.Errorf("metrics JSON snapshot missing:\n%s", errOut)
	}
}

// -max-states is a budget, not a failure: the truncated report is labeled
// and the exit is clean.
func TestRunMaxStatesPartial(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-alg", "fast", "-n", "4", "-max-states", "100"}, &b, io.Discard); err != nil {
		t.Fatalf("state-budgeted run should exit clean, got: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "PARTIAL") {
		t.Errorf("partial report not marked:\n%s", b.String())
	}
}

// The three symmetry levels must agree on the sweep's weighted counts and
// verdicts; -symmetry=off output stays byte-identical to the historical
// non-sweep path.
func TestRunSweepSymmetryEquivalence(t *testing.T) {
	render := func(symmetry string) string {
		var b strings.Builder
		if err := run([]string{"-alg", "five", "-n", "4", "-sweep", "-worst", "-symmetry", symmetry}, &b, io.Discard); err != nil {
			t.Fatalf("-symmetry=%s: %v\n%s", symmetry, err, b.String())
		}
		return b.String()
	}
	off := render("off")
	red := render("assignments")
	if !strings.Contains(off, "assignments=24") || !strings.Contains(red, "assignments=24") {
		t.Errorf("sweeps did not cover all 24 assignments:\noff: %sreduced: %s", off, red)
	}
	if !strings.Contains(red, "runs=3") {
		t.Errorf("reduced sweep should run 3 orbit representatives:\n%s", red)
	}
	// The weighted fields and the worst-case line must agree verbatim.
	for _, field := range []string{"states=", "terminal=", "cycles=", "violations=", "allok="} {
		if pick(t, off, field) != pick(t, red, field) {
			t.Errorf("field %q differs:\noff: %sreduced: %s", field, off, red)
		}
	}
	offWorst := off[strings.Index(off, "exact worst-case"):]
	redWorst := red[strings.Index(red, "exact worst-case"):]
	if offWorst != redWorst {
		t.Errorf("worst-case lines differ:\noff: %sreduced: %s", offWorst, redWorst)
	}

	full := render("full")
	for _, field := range []string{"cycles=", "violations=", "allok="} {
		if pick(t, off, field) != pick(t, full, field) {
			t.Errorf("full-mode field %q drifted:\noff: %sfull: %s", field, off, full)
		}
	}
}

// pick extracts the whitespace-delimited token starting with prefix.
func pick(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, tok := range strings.Fields(out) {
		if strings.HasPrefix(tok, prefix) {
			return tok
		}
	}
	t.Fatalf("token %q not found in:\n%s", prefix, out)
	return ""
}

func TestRunSymmetryFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "five", "-n", "3", "-symmetry", "bogus"},
		{"-alg", "five", "-n", "3", "-symmetry", "assignments"}, // requires -sweep
		{"-alg", "mis-greedy", "-n", "3", "-sweep"},             // sweep is coloring-only
	} {
		var b strings.Builder
		if err := run(args, &b, io.Discard); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// -symmetry=full without -sweep engages within-run reduction; verdicts
// must match the unreduced run.
func TestRunSymmetryFullSingleInstance(t *testing.T) {
	var off, full strings.Builder
	if err := run([]string{"-alg", "five", "-n", "4", "-mode", "simultaneous"}, &off, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-alg", "five", "-n", "4", "-mode", "simultaneous", "-symmetry", "full"}, &full, io.Discard); err != nil {
		t.Fatal(err)
	}
	if pick(t, off.String(), "cycle=") != pick(t, full.String(), "cycle=") {
		t.Errorf("wait-freedom verdict drifted:\noff: %sfull: %s", off.String(), full.String())
	}
	if !strings.Contains(full.String(), "symmetry=full weighted=") {
		t.Errorf("full-mode report does not record the reduction:\n%s", full.String())
	}
}
