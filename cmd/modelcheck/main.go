// Command modelcheck exhaustively verifies a registered protocol on a
// small instance over every schedule, reporting safety violations,
// livelock cycles (non-wait-freedom certificates), and — when feasible —
// the exact worst-case per-process round counts.
//
// Usage:
//
//	modelcheck [-alg fast|five|six|mis-greedy|...] [-list]
//	           [-n 3] [-topology cycle|path|complete|torus|random:Δ:seed]
//	           [-mode interleaved|simultaneous] [-worst] [-workers N]
//	           [-sweep] [-symmetry off|assignments|full] [-depth N]
//	           [-timeout 30s] [-max-states N] [-progress 1s] [-metrics-json -]
//	           [-spill-dir DIR] [-mem-limit N]
//	           [-checkpoint FILE] [-resume] [-shard I/M] [-procs M] [-json]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -list prints the table of registered protocols and exits. -topology
// retargets the protocol onto another registered graph family the
// descriptor declares (sizes round via the family's normalizer). -sweep
// checks every identifier-rank assignment instead of just the increasing
// one; on any topology other than the standard cycle the reduced sweeps
// refuse (the dihedral orbit weighting is cycle-specific) — use
// -symmetry off there. -symmetry=assignments quotients that sweep by the
// dihedral group with exact orbit weighting (requires -sweep);
// -symmetry=full additionally dedups rotation-equivalent states inside
// each exploration. Verdicts and weighted counts are identical at every
// level (see DESIGN.md §6).
//
// -depth bounds schedule length. Protocols with an infinite state graph
// (decoupled-three: the network clock never repeats a value) default to
// their descriptor's depth horizon and report PARTIAL — the verdict then
// covers every schedule of at most that many ticks.
//
// Out-of-core and resumable sweeps (see DESIGN.md §13): -spill-dir makes
// each exploration's visited set disk-backed once it outgrows -mem-limit
// resident fingerprints. -checkpoint makes a -sweep write a checksummed
// checkpoint after every completed assignment orbit; an interrupted sweep
// (Ctrl-C, SIGTERM, -timeout) restarted with -resume continues from the
// checkpoint and finishes with counts bit-identical to an uninterrupted
// run. -shard I/M explores only every M-th orbit representative (shard I,
// zero-based); -procs M spawns M modelcheck worker processes, one per
// shard, and merges their reports exactly. -json prints the final sweep
// report as JSON (the coordinator's wire format).
//
// A run stopped by -timeout or -max-states exits 0 with a report explicitly
// marked PARTIAL: the verdicts cover exactly the explored region. Safety
// violations always exit 1, partial or not.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"asynccycle/internal/contract"
	"asynccycle/internal/ids"
	"asynccycle/internal/metrics"
	"asynccycle/internal/model"
	"asynccycle/internal/ooc"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

func main() {
	// Ctrl-C / SIGTERM cancel the root context: the exploration stops
	// between expansions and the report comes back [PARTIAL: cancelled]
	// with exit 0 — interrupted work is reported, not discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w, ew io.Writer) error {
	return runContext(context.Background(), args, w, ew)
}

func runContext(ctx context.Context, args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "algorithm to verify (see -list)")
	list := fs.Bool("list", false, "print the registered protocols and exit")
	n := fs.Int("n", 3, "instance size (3–5 recommended)")
	topology := fs.String("topology", "", "graph family to verify on (a family the protocol declares); empty = the protocol's native topology")
	modeStr := fs.String("mode", "interleaved", "activation semantics: interleaved|simultaneous")
	worst := fs.Bool("worst", false, "also compute exact worst-case per-process rounds")
	symmetryStr := fs.String("symmetry", "off", "symmetry reduction: off|assignments|full (assignments requires -sweep)")
	sweep := fs.Bool("sweep", false, "check every identifier-rank assignment, not just the increasing one (fast|five|six|dp1)")
	depth := fs.Int("depth", 0, "schedule-depth bound (0 = protocol default); deeper states are reported PARTIAL")
	maxStates := fs.Int("max-states", 5_000_000, "state budget; a tripped budget yields a PARTIAL report")
	workers := fs.Int("workers", 1, "frontier-parallel exploration workers (1 = serial DFS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); a tripped budget yields a PARTIAL report, exit 0")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	metricsJSON := fs.String("metrics-json", "", "write the final metrics snapshot as JSON to this file (\"-\" = stderr)")
	spillDir := fs.String("spill-dir", "", "spill the visited set to sorted fingerprint runs under this directory once it outgrows -mem-limit")
	memLimit := fs.Int("mem-limit", ooc.DefaultMemLimit, "resident visited fingerprints before spilling (with -spill-dir)")
	checkpoint := fs.String("checkpoint", "", "write a resumable sweep checkpoint to this file after every completed assignment orbit (requires -sweep)")
	resume := fs.Bool("resume", false, "continue an interrupted sweep from -checkpoint instead of restarting")
	shardStr := fs.String("shard", "", "explore only shard I of M orbit representatives, as I/M (requires -sweep)")
	procs := fs.Int("procs", 1, "spawn this many modelcheck worker processes, one sweep shard each, and merge their reports (requires -sweep)")
	jsonOut := fs.Bool("json", false, "print the final sweep report as JSON (requires -sweep)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}
	if !*sweep {
		switch {
		case *checkpoint != "":
			return fmt.Errorf("-checkpoint records an assignment-sweep cursor: add -sweep")
		case *resume:
			return fmt.Errorf("-resume continues a checkpointed sweep: add -sweep")
		case *shardStr != "":
			return fmt.Errorf("-shard splits an assignment sweep: add -sweep")
		case *procs > 1:
			return fmt.Errorf("-procs shards an assignment sweep: add -sweep")
		case *jsonOut:
			return fmt.Errorf("-json renders a sweep report: add -sweep")
		}
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs the checkpoint file: add -checkpoint FILE")
	}
	if (*checkpoint != "" || *resume || *jsonOut || *procs > 1) && *worst {
		return fmt.Errorf("-checkpoint/-resume/-json/-procs cover the exploration sweep only, not -worst")
	}
	shardIndex, shardCount, err := parseShard(*shardStr)
	if err != nil {
		return err
	}
	if *procs > 1 && shardCount > 1 {
		return fmt.Errorf("-procs spawns its own shards; drop -shard")
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(ew, "modelcheck: profile:", err)
		}
	}()

	var met *metrics.Run
	if *progress > 0 || *metricsJSON != "" {
		met = metrics.NewRun()
	}
	if *progress > 0 {
		defer metrics.StartProgress(ew, *progress, met)()
	}
	if *metricsJSON != "" {
		defer func() {
			out := ew
			var f *os.File
			if *metricsJSON != "-" {
				var err error
				if f, err = os.Create(*metricsJSON); err != nil {
					fmt.Fprintln(ew, "modelcheck: metrics:", err)
					return
				}
				out = f
			}
			if err := met.Snapshot().WriteJSON(out); err != nil {
				fmt.Fprintln(ew, "modelcheck: metrics:", err)
			}
			if f != nil {
				f.Close()
			}
		}()
	}

	var mode sim.Mode
	switch *modeStr {
	case "interleaved":
		mode = sim.ModeInterleaved
	case "simultaneous":
		mode = sim.ModeSimultaneous
	default:
		return fmt.Errorf("unknown mode %q", *modeStr)
	}
	symmetry, err := model.ParseSymmetry(*symmetryStr)
	if err != nil {
		return err
	}
	if symmetry == model.SymmetryAssignments && !*sweep {
		return fmt.Errorf("-symmetry=assignments reduces the identifier-assignment sweep: add -sweep")
	}

	d, err := protocol.Lookup(*alg)
	if err != nil {
		return err
	}
	d, err = protocol.WithTopology(d, *topology)
	if err != nil {
		return err
	}
	if d.FixN != nil {
		*n = d.FixN(*n)
	}
	if d.Check == nil {
		return fmt.Errorf("algorithm %q has no branchable instance surface to model-check", *alg)
	}
	if len(d.Modes) > 0 && !d.SupportsMode(mode) {
		return fmt.Errorf("algorithm %q does not support %s semantics", *alg, mode)
	}
	if *worst && d.Worst == nil {
		return fmt.Errorf("algorithm %q does not support -worst (no exact round analysis)", *alg)
	}

	// Under interleaved semantics, subset schedules are equivalent to
	// sequences of singleton activations; explore singletons only. The
	// reduction needs the protocol to actually have interleaved semantics
	// — for native-semantics protocols (empty Modes, e.g. the DECOUPLED
	// tick model, where simultaneity is observable) subsets stay.
	single := mode == sim.ModeInterleaved && len(d.Modes) > 0
	opt := model.Options{
		SingletonsOnly: single,
		MaxStates:      *maxStates,
		Workers:        *workers,
		Symmetry:       symmetry,
		Context:        ctx,
		Budget:         runctl.Budget{Timeout: *timeout},
		Metrics:        met,
		SpillDir:       *spillDir,
		SpillMemLimit:  *memLimit,
		ShardIndex:     shardIndex,
		ShardCount:     shardCount,
	}
	if *depth > 0 {
		opt.MaxDepth = *depth
	} else if d.DefaultCheckDepth > 0 {
		opt.MaxDepth = d.DefaultCheckDepth
	}
	xs := ids.MustGenerate(ids.Increasing, *n, 0)

	if *sweep {
		if d.Sweep == nil {
			return fmt.Errorf("-sweep needs a sweepable coloring surface (fast|five|six|dp1), not %q", *alg)
		}
		if *procs > 1 {
			return coordinateShards(ctx, args, *procs, *checkpoint, w, ew)
		}
		cfg := sweepCfg{
			checkpoint: *checkpoint,
			resume:     *resume,
			jsonOut:    *jsonOut,
			ew:         ew,
			meta: ooc.SweepMeta{
				Alg:        *alg,
				N:          *n,
				Topology:   *topology,
				Mode:       mode.String(),
				Symmetry:   symmetry.String(),
				Singletons: single,
				MaxDepth:   opt.MaxDepth,
				MaxStates:  opt.MaxStates,
				ShardIndex: shardIndex,
				ShardCount: shardCount,
			},
		}
		return sweepAlg(w, d, *n, mode, opt, *worst, cfg)
	}
	return checkAlg(w, d, xs, mode, opt, *worst)
}

// contractField renders the " contract=NAME" header fragment for
// protocols with an explicit labeled contract; legacy bare adapters get
// "" so pre-contract report lines stay byte-identical.
func contractField(d *protocol.Descriptor) string {
	if label := d.ContractLabel(); label != "" {
		return " contract=" + label
	}
	return ""
}

// parseShard parses -shard's "I/M" form (zero-based I < M). The empty
// string means unsharded (0/1).
func parseShard(s string) (int, int, error) {
	if s == "" {
		return 0, 1, nil
	}
	var i, m int
	if n, err := fmt.Sscanf(s, "%d/%d", &i, &m); n != 2 || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want I/M (e.g. 0/2)", s)
	}
	if m < 1 || i < 0 || i >= m {
		return 0, 0, fmt.Errorf("-shard %q: need 0 ≤ I < M", s)
	}
	return i, m, nil
}

// totalsFromReport projects the cumulative sweep report onto the
// checkpoint's numeric totals (N/Symmetry/WorstPerProc are reconstructed
// from the sweep configuration on resume).
func totalsFromReport(rep model.SweepReport) ooc.Totals {
	return ooc.Totals{
		Assignments:    rep.Assignments,
		Runs:           rep.Runs,
		States:         rep.States,
		Terminal:       rep.Terminal,
		CycleRuns:      rep.CycleRuns,
		Violations:     rep.Violations,
		HashCollisions: rep.HashCollisions,
		AllOk:          rep.AllOk,
	}
}

// totalsToReport is the inverse: the seed report a resumed sweep folds new
// orbits into.
func totalsToReport(tt ooc.Totals) model.SweepReport {
	return model.SweepReport{
		Assignments:    tt.Assignments,
		Runs:           tt.Runs,
		States:         tt.States,
		Terminal:       tt.Terminal,
		CycleRuns:      tt.CycleRuns,
		Violations:     tt.Violations,
		HashCollisions: tt.HashCollisions,
		AllOk:          tt.AllOk,
	}
}

// sweepCfg carries the resumable-sweep plumbing into sweepAlg: the
// checkpoint file (written after every completed orbit), whether to seed
// the sweep from it, and the output format.
type sweepCfg struct {
	checkpoint string
	resume     bool
	jsonOut    bool
	meta       ooc.SweepMeta
	ew         io.Writer
}

// sweepAlg verifies every identifier-rank assignment via the descriptor's
// sweep surface (and, with -worst, its worst-case sweep): only relative
// identifier order is observable, so ranks cover all real inputs.
func sweepAlg(w io.Writer, d *protocol.Descriptor, n int, mode sim.Mode, opt model.Options, worst bool, cfg sweepCfg) error {
	g, err := d.Topology(n)
	if err != nil {
		return err
	}
	var orbits []ooc.OrbitRecord
	if cfg.resume {
		cp, fromPrev, err := ooc.Load(cfg.checkpoint)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		if cp.Meta != cfg.meta {
			return fmt.Errorf("resume: %s was written by a different sweep configuration:\n  checkpoint %+v\n  this run   %+v",
				cfg.checkpoint, cp.Meta, cfg.meta)
		}
		if fromPrev {
			fmt.Fprintf(cfg.ew, "modelcheck: primary checkpoint unreadable (torn write?); resumed from %s.prev\n", cfg.checkpoint)
		}
		orbits = cp.Orbits
		opt.SweepResume = &model.SweepResume{
			Cursor: cp.Cursor,
			Totals: totalsToReport(cp.Totals),
		}
	}
	if cfg.checkpoint != "" {
		opt.OnOrbitDone = func(xs []int, weight int, run model.Report, cum model.SweepReport) error {
			orbits = append(orbits, ooc.OrbitRecord{
				Assignment:     xs,
				Weight:         weight,
				States:         run.States,
				Terminal:       run.Terminal,
				WeightedStates: run.WeightedStates,
				Cycle:          run.CycleFound,
				Violations:     len(run.Violations),
				Truncated:      run.Truncated,
				HashCollisions: run.HashCollisions,
			})
			return ooc.Save(cfg.checkpoint, &ooc.Checkpoint{
				Version: ooc.CheckpointVersion,
				Meta:    cfg.meta,
				Cursor:  xs,
				Orbits:  orbits,
				Totals:  totalsFromReport(cum),
			})
		}
	}
	rep, err := d.Sweep(n, mode, opt)
	if err != nil {
		return err
	}
	if cfg.jsonOut {
		// The coordinator's wire format: nothing but the report object.
		enc := json.NewEncoder(w)
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if rep.Violations > 0 {
			return fmt.Errorf("verification failed")
		}
		return nil
	}
	fmt.Fprintf(w, "graph=%s mode=%s%s %s\n", g.Name(), mode, contractField(d), rep)
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): sweep stopped early; counts cover the processed assignments only\n", rep.StopReason)
		if cfg.checkpoint != "" {
			fmt.Fprintf(w, "checkpoint saved: rerun with -resume to continue from the last completed orbit\n")
		}
	}
	if worst {
		wrep, err := d.SweepWorst(n, mode, opt)
		if err != nil {
			return err
		}
		if wrep.AllOk {
			fmt.Fprintf(w, "exact worst-case rounds per position over all assignments: %v (max %d)\n", wrep.WorstPerProc, wrep.MaxWorst)
		} else {
			fmt.Fprintf(w, "worst-case sweep inconclusive: %s\n", wrep)
		}
	}
	if rep.Violations > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func checkAlg(w io.Writer, d *protocol.Descriptor, xs []int, mode sim.Mode, opt model.Options, worst bool) error {
	g, err := d.Topology(len(xs))
	if err != nil {
		return err
	}
	rep, err := d.Check(xs, mode, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s mode=%s%s %s\n", g.Name(), mode, contractField(d), rep)
	for _, v := range rep.Violations {
		fmt.Fprintln(w, "violation:", v)
	}
	if rep.ViolationWitness != nil {
		if data, err := schedule.MarshalSteps(rep.ViolationWitness); err == nil {
			fmt.Fprintf(w, "violation witness schedule: %s\n", data)
		}
	}
	if rep.CycleFound {
		if d.Contract != nil && d.Contract.Liveness() == contract.ClosureConvergence {
			// A stabilizing protocol never terminates by design; the cycle
			// certificate here is a fair loop within the illegitimate states
			// (the convergence violation above carries the witness detail).
			fmt.Fprintln(w, "NOT SELF-STABILIZING: a fair schedule loop stays within illegitimate configurations forever")
		} else {
			fmt.Fprintln(w, "NOT WAIT-FREE: a schedule loop keeps working processes active forever")
			prefix, errP := schedule.MarshalSteps(rep.CyclePrefix)
			loop, errL := schedule.MarshalSteps(rep.CycleLoop)
			if errP == nil && errL == nil {
				fmt.Fprintf(w, "livelock witness: prefix=%s loop=%s\n", prefix, loop)
			}
		}
	}
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): exploration stopped early; verdicts cover the explored region only\n", rep.StopReason)
	}
	if worst {
		vec, ok, wrep, err := d.Worst(xs, mode, opt)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(w, "exact worst-case rounds per process: %v (max %d)\n", vec, stats.MaxInt(vec))
		} else {
			fmt.Fprintf(w, "worst-case analysis inconclusive: %s\n", wrep)
		}
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}
