// Command modelcheck exhaustively verifies a registered protocol on a
// small instance over every schedule, reporting safety violations,
// livelock cycles (non-wait-freedom certificates), and — when feasible —
// the exact worst-case per-process round counts.
//
// Usage:
//
//	modelcheck [-alg fast|five|six|mis-greedy|...] [-list]
//	           [-n 3] [-mode interleaved|simultaneous] [-worst] [-workers N]
//	           [-sweep] [-symmetry off|assignments|full] [-depth N]
//	           [-timeout 30s] [-max-states N] [-progress 1s] [-metrics-json -]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -list prints the table of registered protocols and exits. -sweep checks
// every identifier-rank assignment of the cycle instead of just the
// increasing one. -symmetry=assignments quotients that sweep by the
// dihedral group with exact orbit weighting (requires -sweep);
// -symmetry=full additionally dedups rotation-equivalent states inside
// each exploration. Verdicts and weighted counts are identical at every
// level (see DESIGN.md §6).
//
// -depth bounds schedule length. Protocols with an infinite state graph
// (decoupled-three: the network clock never repeats a value) default to
// their descriptor's depth horizon and report PARTIAL — the verdict then
// covers every schedule of at most that many ticks.
//
// A run stopped by -timeout or -max-states exits 0 with a report explicitly
// marked PARTIAL: the verdicts cover exactly the explored region. Safety
// violations always exit 1, partial or not.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"asynccycle/internal/ids"
	"asynccycle/internal/metrics"
	"asynccycle/internal/model"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

func main() {
	// Ctrl-C / SIGTERM cancel the root context: the exploration stops
	// between expansions and the report comes back [PARTIAL: cancelled]
	// with exit 0 — interrupted work is reported, not discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w, ew io.Writer) error {
	return runContext(context.Background(), args, w, ew)
}

func runContext(ctx context.Context, args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "algorithm to verify (see -list)")
	list := fs.Bool("list", false, "print the registered protocols and exit")
	n := fs.Int("n", 3, "instance size (3–5 recommended)")
	modeStr := fs.String("mode", "interleaved", "activation semantics: interleaved|simultaneous")
	worst := fs.Bool("worst", false, "also compute exact worst-case per-process rounds")
	symmetryStr := fs.String("symmetry", "off", "symmetry reduction: off|assignments|full (assignments requires -sweep)")
	sweep := fs.Bool("sweep", false, "check every identifier-rank assignment of the cycle, not just the increasing one (fast|five|six)")
	depth := fs.Int("depth", 0, "schedule-depth bound (0 = protocol default); deeper states are reported PARTIAL")
	maxStates := fs.Int("max-states", 5_000_000, "state budget; a tripped budget yields a PARTIAL report")
	workers := fs.Int("workers", 1, "frontier-parallel exploration workers (1 = serial DFS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); a tripped budget yields a PARTIAL report, exit 0")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	metricsJSON := fs.String("metrics-json", "", "write the final metrics snapshot as JSON to this file (\"-\" = stderr)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(ew, "modelcheck: profile:", err)
		}
	}()

	var met *metrics.Run
	if *progress > 0 || *metricsJSON != "" {
		met = metrics.NewRun()
	}
	if *progress > 0 {
		defer metrics.StartProgress(ew, *progress, met)()
	}
	if *metricsJSON != "" {
		defer func() {
			out := ew
			var f *os.File
			if *metricsJSON != "-" {
				var err error
				if f, err = os.Create(*metricsJSON); err != nil {
					fmt.Fprintln(ew, "modelcheck: metrics:", err)
					return
				}
				out = f
			}
			if err := met.Snapshot().WriteJSON(out); err != nil {
				fmt.Fprintln(ew, "modelcheck: metrics:", err)
			}
			if f != nil {
				f.Close()
			}
		}()
	}

	var mode sim.Mode
	switch *modeStr {
	case "interleaved":
		mode = sim.ModeInterleaved
	case "simultaneous":
		mode = sim.ModeSimultaneous
	default:
		return fmt.Errorf("unknown mode %q", *modeStr)
	}
	symmetry, err := model.ParseSymmetry(*symmetryStr)
	if err != nil {
		return err
	}
	if symmetry == model.SymmetryAssignments && !*sweep {
		return fmt.Errorf("-symmetry=assignments reduces the identifier-assignment sweep: add -sweep")
	}

	d, err := protocol.Lookup(*alg)
	if err != nil {
		return err
	}
	if d.Check == nil {
		return fmt.Errorf("algorithm %q has no branchable instance surface to model-check", *alg)
	}
	if len(d.Modes) > 0 && !d.SupportsMode(mode) {
		return fmt.Errorf("algorithm %q does not support %s semantics", *alg, mode)
	}
	if *worst && d.Worst == nil {
		return fmt.Errorf("algorithm %q does not support -worst (no exact round analysis)", *alg)
	}

	// Under interleaved semantics, subset schedules are equivalent to
	// sequences of singleton activations; explore singletons only. The
	// reduction needs the protocol to actually have interleaved semantics
	// — for native-semantics protocols (empty Modes, e.g. the DECOUPLED
	// tick model, where simultaneity is observable) subsets stay.
	single := mode == sim.ModeInterleaved && len(d.Modes) > 0
	opt := model.Options{
		SingletonsOnly: single,
		MaxStates:      *maxStates,
		Workers:        *workers,
		Symmetry:       symmetry,
		Context:        ctx,
		Budget:         runctl.Budget{Timeout: *timeout},
		Metrics:        met,
	}
	if *depth > 0 {
		opt.MaxDepth = *depth
	} else if d.DefaultCheckDepth > 0 {
		opt.MaxDepth = d.DefaultCheckDepth
	}
	xs := ids.MustGenerate(ids.Increasing, *n, 0)

	if *sweep {
		if d.Sweep == nil {
			return fmt.Errorf("-sweep supports the cycle-coloring algorithms fast|five|six, not %q", *alg)
		}
		return sweepAlg(w, d, *n, mode, opt, *worst)
	}
	return checkAlg(w, d, xs, mode, opt, *worst)
}

// sweepAlg verifies every identifier-rank assignment via the descriptor's
// sweep surface (and, with -worst, its worst-case sweep): only relative
// identifier order is observable, so ranks cover all real inputs.
func sweepAlg(w io.Writer, d *protocol.Descriptor, n int, mode sim.Mode, opt model.Options, worst bool) error {
	g, err := d.Topology(n)
	if err != nil {
		return err
	}
	rep, err := d.Sweep(n, mode, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s mode=%s %s\n", g.Name(), mode, rep)
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): sweep stopped early; counts cover the processed assignments only\n", rep.StopReason)
	}
	if worst {
		wrep, err := d.SweepWorst(n, mode, opt)
		if err != nil {
			return err
		}
		if wrep.AllOk {
			fmt.Fprintf(w, "exact worst-case rounds per position over all assignments: %v (max %d)\n", wrep.WorstPerProc, wrep.MaxWorst)
		} else {
			fmt.Fprintf(w, "worst-case sweep inconclusive: %s\n", wrep)
		}
	}
	if rep.Violations > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func checkAlg(w io.Writer, d *protocol.Descriptor, xs []int, mode sim.Mode, opt model.Options, worst bool) error {
	g, err := d.Topology(len(xs))
	if err != nil {
		return err
	}
	rep, err := d.Check(xs, mode, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s mode=%s %s\n", g.Name(), mode, rep)
	for _, v := range rep.Violations {
		fmt.Fprintln(w, "violation:", v)
	}
	if rep.ViolationWitness != nil {
		if data, err := schedule.MarshalSteps(rep.ViolationWitness); err == nil {
			fmt.Fprintf(w, "violation witness schedule: %s\n", data)
		}
	}
	if rep.CycleFound {
		fmt.Fprintln(w, "NOT WAIT-FREE: a schedule loop keeps working processes active forever")
		prefix, errP := schedule.MarshalSteps(rep.CyclePrefix)
		loop, errL := schedule.MarshalSteps(rep.CycleLoop)
		if errP == nil && errL == nil {
			fmt.Fprintf(w, "livelock witness: prefix=%s loop=%s\n", prefix, loop)
		}
	}
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): exploration stopped early; verdicts cover the explored region only\n", rep.StopReason)
	}
	if worst {
		vec, ok, wrep, err := d.Worst(xs, mode, opt)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintf(w, "exact worst-case rounds per process: %v (max %d)\n", vec, stats.MaxInt(vec))
		} else {
			fmt.Fprintf(w, "worst-case analysis inconclusive: %s\n", wrep)
		}
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}
