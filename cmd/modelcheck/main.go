// Command modelcheck exhaustively verifies an algorithm on a small cycle
// over every schedule, reporting safety violations, livelock cycles
// (non-wait-freedom certificates), and — when feasible — the exact
// worst-case per-process round counts.
//
// Usage:
//
//	modelcheck [-alg fast|five|six|mis-greedy|mis-impatient|renaming]
//	           [-n 3] [-mode interleaved|simultaneous] [-worst] [-workers N]
//	           [-sweep] [-symmetry off|assignments|full]
//	           [-timeout 30s] [-max-states N] [-progress 1s] [-metrics-json -]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -sweep checks every identifier-rank assignment of the cycle instead of
// just the increasing one. -symmetry=assignments quotients that sweep by
// the dihedral group with exact orbit weighting (requires -sweep);
// -symmetry=full additionally dedups rotation-equivalent states inside
// each exploration. Verdicts and weighted counts are identical at every
// level (see DESIGN.md §6).
//
// A run stopped by -timeout or -max-states exits 0 with a report explicitly
// marked PARTIAL: the verdicts cover exactly the explored region. Safety
// violations always exit 1, partial or not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"asynccycle/internal/check"
	"asynccycle/internal/core"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/metrics"
	"asynccycle/internal/mis"
	"asynccycle/internal/model"
	"asynccycle/internal/prof"
	"asynccycle/internal/renaming"
	"asynccycle/internal/runctl"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
	"asynccycle/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	alg := fs.String("alg", "fast", "algorithm: fast|five|six|mis-greedy|mis-impatient|renaming")
	n := fs.Int("n", 3, "instance size (3–5 recommended)")
	modeStr := fs.String("mode", "interleaved", "activation semantics: interleaved|simultaneous")
	worst := fs.Bool("worst", false, "also compute exact worst-case per-process rounds")
	symmetryStr := fs.String("symmetry", "off", "symmetry reduction: off|assignments|full (assignments requires -sweep)")
	sweep := fs.Bool("sweep", false, "check every identifier-rank assignment of the cycle, not just the increasing one (fast|five|six)")
	maxStates := fs.Int("max-states", 5_000_000, "state budget; a tripped budget yields a PARTIAL report")
	workers := fs.Int("workers", 1, "frontier-parallel exploration workers (1 = serial DFS)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); a tripped budget yields a PARTIAL report, exit 0")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	metricsJSON := fs.String("metrics-json", "", "write the final metrics snapshot as JSON to this file (\"-\" = stderr)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(ew, "modelcheck: profile:", err)
		}
	}()

	var met *metrics.Run
	if *progress > 0 || *metricsJSON != "" {
		met = metrics.NewRun()
	}
	if *progress > 0 {
		defer metrics.StartProgress(ew, *progress, met)()
	}
	if *metricsJSON != "" {
		defer func() {
			out := ew
			var f *os.File
			if *metricsJSON != "-" {
				var err error
				if f, err = os.Create(*metricsJSON); err != nil {
					fmt.Fprintln(ew, "modelcheck: metrics:", err)
					return
				}
				out = f
			}
			if err := met.Snapshot().WriteJSON(out); err != nil {
				fmt.Fprintln(ew, "modelcheck: metrics:", err)
			}
			if f != nil {
				f.Close()
			}
		}()
	}

	var mode sim.Mode
	switch *modeStr {
	case "interleaved":
		mode = sim.ModeInterleaved
	case "simultaneous":
		mode = sim.ModeSimultaneous
	default:
		return fmt.Errorf("unknown mode %q", *modeStr)
	}
	symmetry, err := model.ParseSymmetry(*symmetryStr)
	if err != nil {
		return err
	}
	if symmetry == model.SymmetryAssignments && !*sweep {
		return fmt.Errorf("-symmetry=assignments reduces the identifier-assignment sweep: add -sweep")
	}
	// Under interleaved semantics, subset schedules are equivalent to
	// sequences of singleton activations; explore singletons only.
	single := mode == sim.ModeInterleaved
	opt := model.Options{
		SingletonsOnly: single,
		MaxStates:      *maxStates,
		Workers:        *workers,
		Symmetry:       symmetry,
		Budget:         runctl.Budget{Timeout: *timeout},
		Metrics:        met,
	}
	xs := ids.MustGenerate(ids.Increasing, *n, 0)

	if *sweep {
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		switch *alg {
		case "fast":
			return sweepAlg(w, g, core.NewFastNodes, mode, opt, *worst, colorInvariant[core.FastVal](g, 5))
		case "five":
			return sweepAlg(w, g, core.NewFiveNodes, mode, opt, *worst, colorInvariant[core.FiveVal](g, 5))
		case "six":
			inv := func(e *sim.Engine[core.PairVal]) error {
				r := e.Result()
				if err := check.ProperColoring(g, r); err != nil {
					return err
				}
				return check.PairPalette(r, 2)
			}
			return sweepAlg(w, g, core.NewPairNodes, mode, opt, *worst, inv)
		default:
			return fmt.Errorf("-sweep supports the cycle-coloring algorithms fast|five|six, not %q", *alg)
		}
	}

	switch *alg {
	case "fast":
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		return checkAlg(w, g, core.NewFastNodes(xs), mode, opt, *worst, colorInvariant[core.FastVal](g, 5))
	case "five":
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		return checkAlg(w, g, core.NewFiveNodes(xs), mode, opt, *worst, colorInvariant[core.FiveVal](g, 5))
	case "six":
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		inv := func(e *sim.Engine[core.PairVal]) error {
			r := e.Result()
			if err := check.ProperColoring(g, r); err != nil {
				return err
			}
			return check.PairPalette(r, 2)
		}
		return checkAlg(w, g, core.NewPairNodes(xs), mode, opt, *worst, inv)
	case "mis-greedy":
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		return checkAlg(w, g, mis.NewGreedyNodes(xs), mode, opt, *worst, misInvariant(g))
	case "mis-impatient":
		g, err := graph.Cycle(*n)
		if err != nil {
			return err
		}
		return checkAlg(w, g, mis.NewImpatientNodes(xs, 2), mode, opt, *worst, misInvariant(g))
	case "renaming":
		g, err := graph.Complete(*n)
		if err != nil {
			return err
		}
		inv := func(e *sim.Engine[renaming.Val]) error {
			r := e.Result()
			seen := map[int]bool{}
			for i, out := range r.Outputs {
				if !r.Done[i] {
					continue
				}
				if out < 0 || out > renaming.MaxName(*n) {
					return fmt.Errorf("name %d outside {0..%d}", out, renaming.MaxName(*n))
				}
				if seen[out] {
					return fmt.Errorf("duplicate name %d", out)
				}
				seen[out] = true
			}
			return nil
		}
		return checkAlg(w, g, renaming.NewNodes(xs), mode, opt, *worst, inv)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
}

// sweepAlg verifies every identifier-rank assignment of the cycle via
// model.SweepExplore (and, with -worst, SweepWorstActivations): only
// relative identifier order is observable, so ranks cover all real inputs.
func sweepAlg[V any](w io.Writer, g graph.Graph, mkNodes func(xs []int) []sim.Node[V], mode sim.Mode, opt model.Options, worst bool, inv model.Invariant[V]) error {
	mk := func(xs []int) (*sim.Engine[V], error) {
		e, err := sim.NewEngine(g, mkNodes(xs))
		if err != nil {
			return nil, err
		}
		e.SetMode(mode)
		return e, nil
	}
	rep, err := model.SweepExplore(g.N(), mk, opt, inv)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph=%s mode=%s %s\n", g.Name(), mode, rep)
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): sweep stopped early; counts cover the processed assignments only\n", rep.StopReason)
	}
	if worst {
		wrep, err := model.SweepWorstActivations(g.N(), mk, opt)
		if err != nil {
			return err
		}
		if wrep.AllOk {
			fmt.Fprintf(w, "exact worst-case rounds per position over all assignments: %v (max %d)\n", wrep.WorstPerProc, wrep.MaxWorst)
		} else {
			fmt.Fprintf(w, "worst-case sweep inconclusive: %s\n", wrep)
		}
	}
	if rep.Violations > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}

func colorInvariant[V any](g graph.Graph, palette int) model.Invariant[V] {
	return func(e *sim.Engine[V]) error {
		r := e.Result()
		if err := check.ProperColoring(g, r); err != nil {
			return err
		}
		return check.PaletteRange(r, palette)
	}
}

func misInvariant(g graph.Graph) model.Invariant[mis.Val] {
	return func(e *sim.Engine[mis.Val]) error {
		r := e.Result()
		if v := mis.ViolatesMIS(g.Edges(), g.N(), r.Outputs, r.Done); v != "" {
			return fmt.Errorf("%s", v)
		}
		return nil
	}
}

func checkAlg[V any](w io.Writer, g graph.Graph, nodes []sim.Node[V], mode sim.Mode, opt model.Options, worst bool, inv model.Invariant[V]) error {
	e, err := sim.NewEngine(g, nodes)
	if err != nil {
		return err
	}
	e.SetMode(mode)
	rep := model.Explore(e, opt, inv)
	fmt.Fprintf(w, "graph=%s mode=%s %s\n", g.Name(), mode, rep)
	for _, v := range rep.Violations {
		fmt.Fprintln(w, "violation:", v)
	}
	if rep.ViolationWitness != nil {
		if data, err := schedule.MarshalSteps(rep.ViolationWitness); err == nil {
			fmt.Fprintf(w, "violation witness schedule: %s\n", data)
		}
	}
	if rep.CycleFound {
		fmt.Fprintln(w, "NOT WAIT-FREE: a schedule loop keeps working processes active forever")
		prefix, errP := schedule.MarshalSteps(rep.CyclePrefix)
		loop, errL := schedule.MarshalSteps(rep.CycleLoop)
		if errP == nil && errL == nil {
			fmt.Fprintf(w, "livelock witness: prefix=%s loop=%s\n", prefix, loop)
		}
	}
	if rep.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): exploration stopped early; verdicts cover the explored region only\n", rep.StopReason)
	}
	if worst {
		e2, err := sim.NewEngine(g, cloneNodes(nodes))
		if err != nil {
			return err
		}
		e2.SetMode(mode)
		vec, ok, wrep := model.WorstActivations(e2, opt)
		if ok {
			fmt.Fprintf(w, "exact worst-case rounds per process: %v (max %d)\n", vec, stats.MaxInt(vec))
		} else {
			fmt.Fprintf(w, "worst-case analysis inconclusive: %s\n", wrep)
		}
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}

// cloneNodes duplicates node state machines so the two analyses start from
// identical initial configurations.
func cloneNodes[V any](nodes []sim.Node[V]) []sim.Node[V] {
	out := make([]sim.Node[V], len(nodes))
	for i, n := range nodes {
		out[i] = n.Clone()
	}
	return out
}
