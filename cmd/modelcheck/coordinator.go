// Multi-process sweep sharding: -procs M re-invokes this binary M times,
// each worker exploring shard I/M of the orbit representatives (-shard)
// and printing its SweepReport as JSON (-json). The coordinator merges the
// disjoint shard reports exactly (model.MergeSweepReports), so the merged
// line matches a single-process sweep bit for bit.
//
// Interruption composes with checkpointing: the coordinator forwards
// SIGTERM to every worker through the context, each worker checkpoints to
// its own per-shard file (<base>.shardI-of-M) and reports PARTIAL, and a
// rerun with -resume hands each worker its own checkpoint back.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"asynccycle/internal/model"
)

// workerSpawner runs one worker invocation of modelcheck with the given
// args, wiring its stdout/stderr. Tests substitute an in-process runner;
// the default execs the current binary.
type workerSpawner func(ctx context.Context, args []string, stdout, stderr io.Writer) error

// spawnWorker is the process-spawning strategy; a package variable so the
// coordinator tests can run workers in-process.
var spawnWorker workerSpawner = execWorker

func execWorker(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmd := exec.CommandContext(ctx, exe, args...)
	cmd.Stdout, cmd.Stderr = stdout, stderr
	// On cancellation, forward SIGTERM instead of the default SIGKILL so the
	// worker can write its final checkpoint and print a PARTIAL report;
	// WaitDelay hard-kills stragglers.
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = 10 * time.Second
	return cmd.Run()
}

// coordinateShards fans the sweep out over procs worker processes and
// merges their reports. args is the coordinator's own raw argument list;
// each worker gets it back minus -procs, plus its shard assignment, the
// JSON output format, and (when checkpointing) its own per-shard
// checkpoint file.
func coordinateShards(ctx context.Context, args []string, procs int, checkpoint string, w, ew io.Writer) error {
	type result struct {
		rep model.SweepReport
		err error
	}
	results := make([]result, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			err := spawnWorker(ctx, shardArgs(args, i, procs, checkpoint), &out, ew)
			rep, perr := parseWorkerReport(out.Bytes())
			if perr != nil {
				// No usable report: the spawn error (exit status, context
				// cancellation) is the primary failure.
				if err == nil {
					err = perr
				}
				results[i] = result{err: fmt.Errorf("shard %d/%d: %w (output: %.200s)", i, procs, err, out.String())}
				return
			}
			// A worker that found violations exits 1 but still prints a valid
			// report; the verdict is carried by the merged report, not the
			// exit status.
			results[i] = result{rep: rep}
		}(i)
	}
	wg.Wait()

	parts := make([]model.SweepReport, 0, procs)
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		parts = append(parts, r.rep)
	}
	merged, err := model.MergeSweepReports(parts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "procs=%d %s\n", procs, merged)
	if merged.Partial {
		fmt.Fprintf(w, "PARTIAL (%s): sweep stopped early; counts cover the processed assignments only\n", merged.StopReason)
		if checkpoint != "" {
			fmt.Fprintf(w, "checkpoints saved: rerun with -resume to continue every shard\n")
		}
	}
	if merged.Violations > 0 {
		return fmt.Errorf("verification failed")
	}
	return nil
}

// shardArgs derives worker i's argument list from the coordinator's.
func shardArgs(base []string, i, m int, checkpoint string) []string {
	out := stripValueFlag(base, "procs")
	if checkpoint != "" {
		out = stripValueFlag(out, "checkpoint")
		out = append(out, "-checkpoint", shardCheckpoint(checkpoint, i, m))
	}
	return append(out, "-shard", fmt.Sprintf("%d/%d", i, m), "-json")
}

// shardCheckpoint names worker i's private checkpoint file.
func shardCheckpoint(base string, i, m int) string {
	return fmt.Sprintf("%s.shard%d-of-%d", base, i, m)
}

// stripValueFlag removes a value-taking flag (given without dashes) from
// an argument list, covering the -name value, -name=value, and --name
// spellings.
func stripValueFlag(args []string, name string) []string {
	out := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		if a == "-"+name || a == "--"+name {
			i++ // skip the value
			continue
		}
		if strings.HasPrefix(a, "-"+name+"=") || strings.HasPrefix(a, "--"+name+"=") {
			continue
		}
		out = append(out, a)
	}
	return out
}

// parseWorkerReport decodes the single JSON object a -json worker prints.
func parseWorkerReport(out []byte) (model.SweepReport, error) {
	var rep model.SweepReport
	dec := json.NewDecoder(bytes.NewReader(bytes.TrimSpace(out)))
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("parse worker report: %w", err)
	}
	return rep, nil
}
