package main

import (
	"io"
	"testing"

	"asynccycle/internal/goldentest"
)

// TestGoldenDifferential pins modelcheck output across the prior flag
// matrix — single-instance checks, -worst analyses, simultaneous mode,
// sweeps with and without symmetry reduction, and parallel workers — for
// every algorithm the command accepted before the protocol registry. The
// registry migration must keep these bytes identical.
func TestGoldenDifferential(t *testing.T) {
	var cases [][]string
	for _, alg := range []string{"six", "five", "fast"} {
		cases = append(cases,
			[]string{"-alg", alg, "-n", "3"},
			[]string{"-alg", alg, "-n", "4"},
			[]string{"-alg", alg, "-n", "3", "-worst"},
			[]string{"-alg", alg, "-n", "3", "-mode", "simultaneous"},
			[]string{"-alg", alg, "-n", "3", "-mode", "simultaneous", "-symmetry", "full"},
			[]string{"-alg", alg, "-n", "4", "-sweep"},
			[]string{"-alg", alg, "-n", "4", "-sweep", "-worst", "-symmetry", "assignments"},
			[]string{"-alg", alg, "-n", "4", "-workers", "2"},
		)
	}
	cases = append(cases,
		[]string{"-alg", "mis-greedy", "-n", "4"},
		[]string{"-alg", "mis-impatient", "-n", "4"},
		[]string{"-alg", "mis-impatient", "-n", "4", "-worst"},
		[]string{"-alg", "renaming", "-n", "3", "-worst"},
		[]string{"-alg", "renaming", "-n", "4"},
	)
	for _, args := range cases {
		t.Run(goldentest.Name(args), func(t *testing.T) {
			goldentest.Check(t, args, func(a []string, w io.Writer) error {
				return run(a, w, io.Discard)
			})
		})
	}
}
