package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

// TestCancelledContextYieldsPartial pins the Ctrl-C contract: a cancelled
// root context stops the exploration, the report is explicitly PARTIAL
// with the cancellation reason, and the process exits 0 (nil error).
func TestCancelledContextYieldsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b bytes.Buffer
	err := runContext(ctx, []string{"-alg", "fast", "-n", "5"}, &b, io.Discard)
	if err != nil {
		t.Fatalf("cancelled run must exit 0, got %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "PARTIAL") || !strings.Contains(out, "cancelled") {
		t.Fatalf("report not marked PARTIAL/cancelled:\n%s", out)
	}
}
