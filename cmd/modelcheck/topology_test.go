package main

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"asynccycle/internal/model"
	"asynccycle/internal/protocol"
)

// TestSweepDP1CompleteK4 is the exhaustive (Δ+1)-certificate on K4 the
// descriptor's Expectation claims, run through the CLI: every identifier
// assignment, every interleaved schedule, zero violations.
func TestSweepDP1CompleteK4(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "dp1", "-topology", "complete", "-n", "4",
		"-sweep", "-symmetry", "off", "-depth", "512"}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"graph=K4", "assignments=24", "violations=0", "allok=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PARTIAL") {
		t.Errorf("K4 sweep truncated — not an exhaustive certificate:\n%s", out)
	}
}

// TestSweepDP1Path certifies dp1 on the path: P4 always, and the full
// 120-assignment P5 sweep (~30s single-core) unless -short.
func TestSweepDP1Path(t *testing.T) {
	n, assignments := "5", "assignments=120"
	if testing.Short() {
		n, assignments = "4", "assignments=24"
	}
	var b strings.Builder
	args := []string{"-alg", "dp1", "-topology", "path", "-n", n,
		"-sweep", "-symmetry", "off", "-depth", "512"}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{"graph=P" + n, assignments, "violations=0", "allok=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PARTIAL") {
		t.Errorf("P%s sweep truncated — not an exhaustive certificate:\n%s", n, out)
	}
}

// TestSweepSymmetryRefusedOffCycle: the CLI surfaces the typed refusal for
// dihedral-weighted sweeps on non-cycle topologies instead of weighting
// orbits with cycle-automorphism sizes.
func TestSweepSymmetryRefusedOffCycle(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "six", "-topology", "path", "-n", "4",
		"-sweep", "-symmetry", "assignments"}, &b, io.Discard)
	if !errors.Is(err, model.ErrSymmetryTopology) {
		t.Errorf("err = %v, want model.ErrSymmetryTopology", err)
	}
}

// TestCheckpointPinsTopology: the sweep checkpoint records the -topology
// spec, so a -resume under a different topology refuses instead of merging
// incompatible counts. Native-topology checkpoints keep their pre-topology
// byte format (omitempty), which the resume_test golden files already pin.
func TestCheckpointPinsTopology(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "sweep.ckpt")
	var b strings.Builder
	args := []string{"-alg", "dp1", "-topology", "complete", "-n", "4",
		"-sweep", "-symmetry", "off", "-depth", "512", "-checkpoint", cp}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	b.Reset()
	err := run([]string{"-alg", "dp1", "-n", "4",
		"-sweep", "-symmetry", "off", "-depth", "512", "-checkpoint", cp, "-resume"}, &b, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "different sweep configuration") {
		t.Errorf("resume under a different topology: err = %v, want configuration mismatch", err)
	}
}

// TestCheckTopologyUndeclared: the typed refusal reaches the CLI before
// any exploration starts.
func TestCheckTopologyUndeclared(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "renaming", "-topology", "torus", "-n", "9"}, &b, io.Discard)
	if !errors.Is(err, protocol.ErrTopology) {
		t.Errorf("err = %v, want protocol.ErrTopology", err)
	}
}
