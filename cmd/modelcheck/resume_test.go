package main

// CLI-level contracts of out-of-core resumable sweeps: an interrupted
// checkpointed sweep resumed with -resume finishes bit-identical to an
// uninterrupted run, a torn checkpoint falls back to the previous
// generation, -procs shards match the serial sweep exactly, and -spill-dir
// runs match in-RAM runs exactly.

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// firstLine extracts the report line from a run's output.
func firstLine(t *testing.T, out string) string {
	t.Helper()
	line, _, ok := strings.Cut(out, "\n")
	if !ok {
		t.Fatalf("no report line in output:\n%s", out)
	}
	return line
}

func TestRunCheckpointResumeBitIdentical(t *testing.T) {
	ck := t.TempDir() + "/sweep.ckpt"
	args := []string{"-alg", "six", "-n", "5", "-sweep", "-symmetry", "full"}

	var ref strings.Builder
	if err := run(args, &ref, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed sweep: cancel as soon as the first orbit's
	// checkpoint lands, so at least one orbit is completed and (almost
	// always) several are not. A cancelled run exits clean with PARTIAL.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var part strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- runContext(ctx, append(args[:len(args):len(args)], "-checkpoint", ck), &part, io.Discard)
	}()
	for i := 0; i < 2000; i++ {
		if _, err := os.Stat(ck); err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("interrupted run should exit clean: %v\n%s", err, part.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written before cancellation: %v", err)
	}

	// Resume and compare the final report line byte for byte.
	var res strings.Builder
	if err := run(append(args[:len(args):len(args)], "-checkpoint", ck, "-resume"), &res, io.Discard); err != nil {
		t.Fatal(err)
	}
	if got, want := firstLine(t, res.String()), firstLine(t, ref.String()); got != want {
		t.Errorf("resumed sweep drifted:\nresumed       %s\nuninterrupted %s", got, want)
	}
}

// A checkpoint truncated mid-record (torn write) must never be silently
// loaded: -resume falls back to the previous generation, says so, and
// still reproduces the uninterrupted report.
func TestRunResumeTornCheckpointFallsBack(t *testing.T) {
	ck := t.TempDir() + "/sweep.ckpt"
	args := []string{"-alg", "six", "-n", "4", "-sweep", "-symmetry", "assignments"}

	var ref strings.Builder
	if err := run(args, &ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	// A complete checkpointed run saves once per orbit, leaving both the
	// final generation and its predecessor on disk.
	if err := run(append(args[:len(args):len(args)], "-checkpoint", ck), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck + ".prev"); err != nil {
		t.Fatalf("no previous generation: %v", err)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var res, ew strings.Builder
	if err := run(append(args[:len(args):len(args)], "-checkpoint", ck, "-resume"), &res, &ew); err != nil {
		t.Fatalf("fallback resume failed: %v\n%s", err, ew.String())
	}
	if !strings.Contains(ew.String(), ".prev") {
		t.Errorf("fallback not reported on stderr:\n%s", ew.String())
	}
	if got, want := firstLine(t, res.String()), firstLine(t, ref.String()); got != want {
		t.Errorf("fallback resume drifted:\ngot  %s\nwant %s", got, want)
	}
}

// Resuming under a different sweep configuration must be refused, never
// silently merged.
func TestRunResumeRefusesConfigDrift(t *testing.T) {
	ck := t.TempDir() + "/sweep.ckpt"
	if err := run([]string{"-alg", "six", "-n", "4", "-sweep", "-checkpoint", ck}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-alg", "six", "-n", "4", "-sweep", "-symmetry", "assignments", "-checkpoint", ck, "-resume"},
		io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "different sweep configuration") {
		t.Fatalf("config drift not refused: %v", err)
	}
}

// -procs runs every shard through the (test-substituted, in-process)
// worker spawner and the merged report matches the serial sweep exactly.
func TestRunProcsShardedMatchesSerial(t *testing.T) {
	old := spawnWorker
	spawnWorker = func(ctx context.Context, args []string, stdout, stderr io.Writer) error {
		return runContext(ctx, args, stdout, stderr)
	}
	defer func() { spawnWorker = old }()

	args := []string{"-alg", "six", "-n", "4", "-sweep", "-symmetry", "full"}
	var serial, sharded strings.Builder
	if err := run(args, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args[:len(args):len(args)], "-procs", "2"), &sharded, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Serial:  "graph=C4 mode=interleaved sweep n=4 ..."
	// Sharded: "procs=2 sweep n=4 ..."
	_, serialRep, ok := strings.Cut(firstLine(t, serial.String()), "sweep ")
	if !ok {
		t.Fatalf("no sweep report in serial output:\n%s", serial.String())
	}
	_, shardedRep, ok := strings.Cut(firstLine(t, sharded.String()), "sweep ")
	if !ok {
		t.Fatalf("no sweep report in sharded output:\n%s", sharded.String())
	}
	if serialRep != shardedRep {
		t.Errorf("sharded sweep drifted:\nserial  %s\nsharded %s", serialRep, shardedRep)
	}
}

// A single shard covers a strict subset of the runs; explicit -shard flags
// partition the sweep.
func TestRunShardFlag(t *testing.T) {
	args := func(shard string) []string {
		return []string{"-alg", "six", "-n", "4", "-sweep", "-symmetry", "assignments", "-shard", shard}
	}
	var s0, s1 strings.Builder
	if err := run(args("0/2"), &s0, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args("1/2"), &s1, io.Discard); err != nil {
		t.Fatal(err)
	}
	runs0 := pick(t, s0.String(), "runs=")
	runs1 := pick(t, s1.String(), "runs=")
	if runs0 != "runs=2" || runs1 != "runs=1" {
		t.Errorf("C4 shards should split 3 representatives 2/1: got %s and %s", runs0, runs1)
	}
}

// -spill-dir output is byte-identical to the in-RAM run's.
func TestRunSpillMatchesInRAM(t *testing.T) {
	var ram, spill strings.Builder
	if err := run([]string{"-alg", "six", "-n", "4"}, &ram, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-alg", "six", "-n", "4", "-spill-dir", t.TempDir(), "-mem-limit", "50"}, &spill, io.Discard); err != nil {
		t.Fatal(err)
	}
	if ram.String() != spill.String() {
		t.Errorf("spilled run drifted:\nram   %s\nspill %s", ram.String(), spill.String())
	}
}

func TestRunResumableFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "six", "-n", "4", "-checkpoint", "/tmp/x"},                     // requires -sweep
		{"-alg", "six", "-n", "4", "-resume"},                                   // requires -sweep
		{"-alg", "six", "-n", "4", "-shard", "0/2"},                             // requires -sweep
		{"-alg", "six", "-n", "4", "-procs", "2"},                               // requires -sweep
		{"-alg", "six", "-n", "4", "-json"},                                     // requires -sweep
		{"-alg", "six", "-n", "4", "-sweep", "-resume"},                         // requires -checkpoint
		{"-alg", "six", "-n", "4", "-sweep", "-shard", "2/2"},                   // index out of range
		{"-alg", "six", "-n", "4", "-sweep", "-shard", "bogus"},                 // unparseable
		{"-alg", "six", "-n", "4", "-sweep", "-procs", "2", "-shard", "0/2"},    // procs shards itself
		{"-alg", "six", "-n", "4", "-sweep", "-worst", "-checkpoint", "/tmp/x"}, // worst not checkpointable
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
