// Command colorserved serves the protocol registry over HTTP/JSON:
// coloring as a service. Clients POST run, check, and fuzz jobs against
// any registered protocol; the server executes them on a bounded worker
// pool, streams per-job metrics while they run, and keeps results
// fetchable until shutdown. See internal/serve for the API and DESIGN.md
// §12 for the queueing, budgeting, and drain semantics.
//
// Usage:
//
//	colorserved [-addr :8416] [-workers 4] [-queue 64]
//	            [-default-timeout 30s] [-max-timeout 2m]
//	            [-drain-grace 10s] [-progress 0]
//
// Every job runs under a mandatory budget: requests without one get
// -default-timeout, and no request can exceed -max-timeout, so a single
// client cannot starve the pool. Submissions beyond -queue are shed with
// 429. SIGINT/SIGTERM starts a graceful drain: intake stops (503),
// accepted jobs get -drain-grace to finish, stragglers are cancelled and
// complete as PARTIAL, final stats are flushed, and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asynccycle/internal/runctl"
	"asynccycle/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "colorserved:", err)
		os.Exit(1)
	}
}

// run boots the server and blocks until ctx is cancelled (the signal
// path) and the drain completes. ready, when non-nil, is called with the
// bound address once the listener is up — the test hook.
func run(ctx context.Context, args []string, w io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("colorserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8416", "listen address")
	workers := fs.Int("workers", 4, "execution worker pool size")
	queue := fs.Int("queue", 64, "bounded queue depth; submissions beyond it are shed with 429")
	defaultTimeout := fs.Duration("default-timeout", 30*time.Second, "wall-clock budget for jobs that request none")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "per-job wall-clock ceiling; requested budgets are clamped to it")
	drainGrace := fs.Duration("drain-grace", 10*time.Second, "how long a drain waits before cancelling in-flight jobs")
	progress := fs.Duration("progress", 0, "print server stats at this interval (0 = off)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *defaultTimeout,
		MaxBudget:      runctl.Budget{Timeout: *maxTimeout},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(w, "colorserved: listening on %s (workers=%d queue=%d default-timeout=%s max-timeout=%s)\n",
		ln.Addr(), *workers, *queue, *defaultTimeout, *maxTimeout)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var stopProgress func()
	if *progress > 0 {
		stopProgress = startProgress(w, s, *progress)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop intake, let accepted jobs finish within the
	// grace, cancel stragglers to PARTIAL, then flush final stats and
	// close the HTTP side (results stay fetchable until then).
	fmt.Fprintf(w, "colorserved: signal received, draining (grace %s)\n", *drainGrace)
	s.Drain(*drainGrace)
	if stopProgress != nil {
		stopProgress()
	}
	flushStats(w, s)

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "colorserved: drained, exiting")
	return nil
}

// startProgress prints the server counters at the given interval; the
// returned stop is idempotent via the nil-check dance in run.
func startProgress(w io.Writer, s *serve.Server, every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				flushStats(w, s)
			}
		}
	}()
	return func() { close(done) }
}

func flushStats(w io.Writer, s *serve.Server) {
	data, _ := json.Marshal(s.Stats())
	fmt.Fprintf(w, "colorserved: stats %s\n", data)
}
