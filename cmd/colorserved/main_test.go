package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeAndDrain boots the daemon in-process, submits jobs over real
// HTTP, cancels the signal context mid-flight, and verifies the drain
// contract: run exits nil (exit 0), the accepted job is not dropped, and
// the final stats line is flushed.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-queue", "8",
			"-default-timeout", "5s",
			"-drain-grace", "5s",
		}, &out, func(a string) { addrCh <- a })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"kind":"run","alg":"six","n":32,"sched":"rr"}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		t.Fatalf("submit: status %d, view %+v", resp.StatusCode, view)
	}

	cancel() // the signal path
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain did not exit cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung")
	}

	logs := out.String()
	for _, want := range []string{"listening on", "draining", "stats", "drained, exiting"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
	var st struct {
		Accepted  int64 `json:"accepted"`
		Completed int64 `json:"completed"`
		Partial   int64 `json:"partial"`
	}
	line := logs[strings.LastIndex(logs, "stats "):]
	line = strings.TrimPrefix(line[:strings.IndexByte(line, '\n')], "stats ")
	if err := json.Unmarshal([]byte(line), &st); err != nil {
		t.Fatalf("final stats line unparseable: %v: %s", err, line)
	}
	if st.Accepted != 1 || st.Completed+st.Partial != 1 {
		t.Fatalf("accepted job dropped across drain: %+v", st)
	}
}

// syncBuffer serializes writes: run's server goroutines and the progress
// ticker may log concurrently with the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
