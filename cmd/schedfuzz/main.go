// Command schedfuzz runs a deterministic schedule-fuzzing campaign: seeded
// randomized adversarial schedules executed on the simulation engine with
// the paper's correctness oracle watching, cross-checked against the
// replay, clone-step, secondary-semantics, and (sampled) real-concurrency
// execution paths, with any violating schedule shrunk to a minimal
// replayable witness.
//
// Usage:
//
//	schedfuzz [-alg fast|five|six|mis-greedy|...] [-list] [-n 0]
//	          [-topology cycle|path|complete|torus|random:Δ:seed]
//	          [-mode interleaved|simultaneous]
//	          [-seed 1] [-campaign-size 128] [-parallel N] [-conc-every 16]
//	          [-timeout 30s] [-progress 1s] [-metrics-json -]
//
// Any registered protocol with an instance surface is fuzzable; -list
// prints the registry table (the "fuzz" capability marks eligibility).
// The oracle legs adapt to the descriptor: the wait-freedom bound leg is
// skipped for protocols documented as not wait-free, and protocols whose
// expectation is "unsafe" report their own violations by design.
//
// The report is byte-reproducible: for a fixed seed it is identical at
// every -parallel setting. A run stopped by -timeout exits 0 with a report
// explicitly marked [PARTIAL: reason] covering the completed cells only.
// Oracle violations and cross-engine divergences exit 1, partial or not.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"asynccycle/internal/fuzzsched"
	"asynccycle/internal/metrics"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

func main() {
	// Ctrl-C / SIGTERM cancel the root context: the campaign stops after
	// the in-flight cells and the report comes back [PARTIAL: cancelled]
	// with exit 0 — interrupted work is reported, not discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runContext(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedfuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, w, ew io.Writer) error {
	return runContext(context.Background(), args, w, ew)
}

func runContext(ctx context.Context, args []string, w, ew io.Writer) error {
	fs := flag.NewFlagSet("schedfuzz", flag.ContinueOnError)
	fs.SetOutput(ew)
	alg := fs.String("alg", "fast", "algorithm to fuzz (see -list)")
	list := fs.Bool("list", false, "print the registered protocols and exit")
	n := fs.Int("n", 0, "cycle size; 0 varies it per schedule in [3, 12]")
	topology := fs.String("topology", "", "graph family to fuzz on (a family the protocol declares); off-family campaigns run with the cycle round-bound oracle off")
	modeStr := fs.String("mode", "interleaved", "primary activation semantics: interleaved|simultaneous")
	seed := fs.Int64("seed", 1, "campaign seed; the full report is a deterministic function of it")
	campaign := fs.Int("campaign-size", 128, "number of schedules to fuzz")
	parallel := fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS); does not affect the report")
	concEvery := fs.Int("conc-every", 16, "run the real-concurrency leg on every k-th schedule (0 = off)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); a tripped budget yields a PARTIAL report, exit 0")
	progress := fs.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	metricsJSON := fs.String("metrics-json", "", "write the final metrics snapshot as JSON to this file (\"-\" = stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return protocol.WriteList(w)
	}

	var mode sim.Mode
	switch *modeStr {
	case "interleaved":
		mode = sim.ModeInterleaved
	case "simultaneous":
		mode = sim.ModeSimultaneous
	default:
		return fmt.Errorf("unknown mode %q", *modeStr)
	}

	var met *metrics.Run
	if *progress > 0 || *metricsJSON != "" {
		met = metrics.NewRun()
	}
	if *progress > 0 {
		defer metrics.StartProgress(ew, *progress, met)()
	}
	if *metricsJSON != "" {
		defer func() {
			out := ew
			var f *os.File
			if *metricsJSON != "-" {
				var err error
				if f, err = os.Create(*metricsJSON); err != nil {
					fmt.Fprintln(ew, "schedfuzz: metrics:", err)
					return
				}
				out = f
			}
			if err := met.Snapshot().WriteJSON(out); err != nil {
				fmt.Fprintln(ew, "schedfuzz: metrics:", err)
			}
			if f != nil {
				f.Close()
			}
		}()
	}

	rep, err := fuzzsched.Campaign(ctx, fuzzsched.Config{
		Alg:       *alg,
		N:         *n,
		Topology:  *topology,
		Mode:      mode,
		Seed:      *seed,
		Campaign:  *campaign,
		Workers:   *parallel,
		ConcEvery: *concEvery,
		Budget:    runctl.Budget{Timeout: *timeout},
		Metrics:   met,
	})
	if err != nil {
		return err
	}
	rep.Write(w)
	if len(rep.Violations) > 0 || len(rep.Divergences) > 0 {
		return fmt.Errorf("%d violations, %d divergences", len(rep.Violations), len(rep.Divergences))
	}
	return nil
}
