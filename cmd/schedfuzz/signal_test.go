package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

// TestCancelledContextYieldsPartial pins the Ctrl-C contract: a cancelled
// root context stops the campaign after the in-flight cells, the report
// is explicitly [PARTIAL: cancelled], and the process exits 0.
func TestCancelledContextYieldsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b bytes.Buffer
	err := runContext(ctx, []string{"-alg", "fast", "-campaign-size", "512", "-seed", "1"}, &b, io.Discard)
	if err != nil {
		t.Fatalf("cancelled campaign must exit 0, got %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "PARTIAL") || !strings.Contains(out, "cancelled") {
		t.Fatalf("report not marked [PARTIAL: cancelled]:\n%s", out)
	}
}
