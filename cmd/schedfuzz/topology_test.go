package main

import (
	"errors"
	"io"
	"strings"
	"testing"

	"asynccycle/internal/protocol"
)

// TestRunTopologyCampaign fuzzes dp1 on a random Δ-bounded graph through
// the CLI: a clean campaign whose report names the topology.
func TestRunTopologyCampaign(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "dp1", "-topology", "random:4:2", "-n", "10",
		"-seed", "3", "-campaign-size", "16", "-conc-every", "0"}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("campaign errored: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "topology=random:4:2") {
		t.Errorf("report does not name the topology:\n%s", out)
	}
	if !strings.Contains(out, "violations=0") || !strings.Contains(out, "divergences=0") {
		t.Errorf("unexpected findings:\n%s", out)
	}
}

// TestRunTopologyRefused: an undeclared family fails loudly before the
// campaign starts.
func TestRunTopologyRefused(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-alg", "five", "-topology", "torus", "-campaign-size", "4"}, &b, io.Discard)
	if !errors.Is(err, protocol.ErrTopology) {
		t.Errorf("err = %v, want protocol.ErrTopology", err)
	}
}
