package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunCleanCampaign(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "fast", "-seed", "9", "-campaign-size", "64", "-conc-every", "0"}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("clean campaign errored: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "violations=0") || !strings.Contains(out, "divergences=0") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

// TestRunByteReproducible: identical seed → identical report bytes at
// every -parallel setting.
func TestRunByteReproducible(t *testing.T) {
	render := func(parallel string) string {
		var b strings.Builder
		args := []string{"-alg", "five", "-seed", "11", "-campaign-size", "64",
			"-conc-every", "0", "-parallel", parallel}
		if err := run(args, &b, io.Discard); err != nil {
			t.Fatalf("parallel=%s: %v", parallel, err)
		}
		return b.String()
	}
	r1, r4, r7 := render("1"), render("4"), render("7")
	if r1 != r4 || r1 != r7 {
		t.Fatalf("report depends on -parallel:\n-- 1 --\n%s-- 4 --\n%s-- 7 --\n%s", r1, r4, r7)
	}
}

// TestRunFindsF1Livelock: the simultaneous-semantics campaign on C5 must
// report the Algorithm 2 livelock (exit error) with a shrunk witness.
func TestRunFindsF1Livelock(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "five", "-n", "5", "-mode", "simultaneous",
		"-seed", "5", "-campaign-size", "64", "-conc-every", "0"}
	err := run(args, &b, io.Discard)
	if err == nil {
		t.Fatalf("livelock campaign exited clean:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "kind=liveness") || !strings.Contains(out, "witness schedule: [[") {
		t.Errorf("missing liveness witness in report:\n%s", out)
	}
	if !strings.Contains(out, "divergences=0") {
		t.Errorf("expected zero divergences:\n%s", out)
	}
}

// TestRunTimeoutIsPartialNotError: a tripped -timeout exits 0 with an
// explicit PARTIAL marker.
func TestRunTimeoutIsPartialNotError(t *testing.T) {
	var b strings.Builder
	args := []string{"-alg", "five", "-seed", "3", "-campaign-size", "200000",
		"-conc-every", "0", "-timeout", "30ms"}
	if err := run(args, &b, io.Discard); err != nil {
		t.Fatalf("timeout became an error: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "[PARTIAL: timeout]") {
		t.Skipf("campaign finished inside the timeout:\n%s", out)
	}
	if !strings.Contains(out, "PARTIAL (timeout)") {
		t.Errorf("missing PARTIAL detail line:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-alg", "nope"}, io.Discard, io.Discard); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if err := run([]string{"-mode", "nope"}, io.Discard, io.Discard); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestRunMetricsJSON(t *testing.T) {
	var b, eb strings.Builder
	args := []string{"-alg", "six", "-seed", "2", "-campaign-size", "32",
		"-conc-every", "0", "-metrics-json", "-"}
	if err := run(args, &b, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "\"schedules\": 32") {
		t.Errorf("metrics snapshot missing schedules counter:\n%s", eb.String())
	}
}
