package main

import (
	"io"
	"testing"

	"asynccycle/internal/goldentest"
)

// TestGoldenDifferential pins full campaign reports — including the
// violation/witness rendering of the simultaneous-mode F1 case — for every
// algorithm the fuzzer accepted before the protocol registry. The registry
// migration must keep these bytes identical for six|five|fast.
func TestGoldenDifferential(t *testing.T) {
	cases := [][]string{
		{"-alg", "six", "-seed", "1", "-campaign-size", "64"},
		{"-alg", "five", "-seed", "1", "-campaign-size", "64"},
		{"-alg", "fast", "-seed", "1", "-campaign-size", "64"},
		{"-alg", "five", "-n", "5", "-mode", "simultaneous", "-seed", "5", "-campaign-size", "32"},
	}
	for _, args := range cases {
		t.Run(goldentest.Name(args), func(t *testing.T) {
			goldentest.Check(t, args, func(a []string, w io.Writer) error {
				return run(a, w, io.Discard)
			})
		})
	}
}
