// Command bench runs the repository's core benchmarks in-process and
// writes the results as JSON (BENCH_core.json), so perf baselines can be
// recorded and diffed without parsing `go test -bench` text output.
//
// Usage:
//
//	bench [-out BENCH_core.json] [-quick] [-cpuprofile FILE] [-memprofile FILE]
//
// The suite pairs each optimized path with its baseline so the file
// documents the speedups directly: the parallel experiment harness vs its
// serial setting, and the compact-fingerprint model checker vs the exact
// string-fingerprint tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"asynccycle/internal/atomicio"
	"asynccycle/internal/bigsim"
	"asynccycle/internal/core"
	"asynccycle/internal/expt"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/prof"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
	"asynccycle/internal/sim"
)

type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// bigRun records one large-cycle execution on the struct-of-arrays engine:
// throughput (rounds/sec), per-node memory footprint, and the observed
// round complexity against the paper's bound.
type bigRun struct {
	Alg          string  `json:"alg"`
	N            int     `json:"n"`
	Sched        string  `json:"sched"`
	Workers      int     `json:"workers"`
	Steps        int64   `json:"steps"`
	Rounds       int64   `json:"rounds"`
	MaxRounds    int     `json:"max_rounds"`
	Bound        int     `json:"bound"`
	Seconds      float64 `json:"seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	BytesPerNode int     `json:"bytes_per_node"`
}

type report struct {
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the value at entry; the parallel benchmarks raise it to
	// NumCPU for their duration (GOMAXPROCSParallel) so the file actually
	// demonstrates the parallel paths even when launched with GOMAXPROCS=1.
	GOMAXPROCS         int      `json:"gomaxprocs"`
	GOMAXPROCSParallel int      `json:"gomaxprocs_parallel"`
	NumCPU             int      `json:"num_cpu"`
	Quick              bool     `json:"quick"`
	Benchmarks         []entry  `json:"benchmarks"`
	BigRuns            []bigRun `json:"big_runs"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output file")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	err = run(*out, *quick)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	rep := report{
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		GOMAXPROCSParallel: runtime.NumCPU(),
		NumCPU:             runtime.NumCPU(),
		Quick:              quick,
	}

	// atRealProcs runs f with GOMAXPROCS raised to the machine's CPU count
	// and restores the entry value after — the serial benchmarks keep their
	// historical single-P environment, the parallel ones get real cores.
	atRealProcs := func(f func()) {
		prev := runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
		f()
	}

	n := 4096
	if quick {
		n = 512
	}
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 1)

	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op\n", name, rep.Benchmarks[len(rep.Benchmarks)-1].NsPerOp, r.AllocsPerOp())
	}

	// The tentpole pair #1: the experiment harness, serial vs parallel.
	// Tables are byte-identical between the two; only wall-clock differs.
	add("e2_table_serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			expt.E2Alg2Linear(expt.Options{Quick: true, Seed: 1, Parallelism: 1})
		}
	})
	atRealProcs(func() {
		add("e2_table_parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				expt.E2Alg2Linear(expt.Options{Quick: true, Seed: 1, Parallelism: 0})
			}
		})
	})

	// The tentpole pair #2: the model checker, exact string fingerprints vs
	// compact 128-bit hashes (identical state counts, fewer allocations).
	for _, c := range []struct {
		name string
		str  bool
	}{{"modelcheck_c4_string", true}, {"modelcheck_c4_hash", false}} {
		c := c
		add(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cg := graph.MustCycle(4)
			cxs := ids.MustGenerate(ids.Increasing, 4, 0)
			for i := 0; i < b.N; i++ {
				e, _ := sim.NewEngine(cg, core.NewFiveNodes(cxs))
				r := model.Explore(e, model.Options{SingletonsOnly: true, StringFingerprints: c.str}, nil)
				if !r.Ok() {
					b.Fatal("verification failed")
				}
			}
		})
	}

	// The symmetry-reduction pair: exhaustive identifier-assignment sweep
	// of Algorithm 2, unreduced vs quotiented by the dihedral group with
	// exact orbit weighting. Weighted counts are bit-identical; the reduced
	// sweep explores n!/(2n) orbit representatives instead of n!
	// assignments. Quick uses C4 (24 -> 3 runs), the full suite C5
	// (120 -> 12) — large enough that the reduced sweep clears the >= 3x
	// wall-clock bar recorded in EXPERIMENTS.md.
	sweepN := 5
	if quick {
		sweepN = 4
	}
	for _, c := range []struct {
		name string
		sym  model.Symmetry
	}{
		{fmt.Sprintf("sweep_c%d_off", sweepN), model.SymmetryOff},
		{fmt.Sprintf("sweep_c%d_assignments", sweepN), model.SymmetryAssignments},
	} {
		c := c
		add(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cg := graph.MustCycle(sweepN)
			mk := func(axs []int) (*sim.Engine[core.FiveVal], error) {
				return sim.NewEngine(cg, core.NewFiveNodes(axs))
			}
			for i := 0; i < b.N; i++ {
				r, err := model.SweepExplore(sweepN, mk, model.Options{SingletonsOnly: true, Symmetry: c.sym}, nil)
				if err != nil || !r.AllOk {
					b.Fatalf("sweep failed: %v %v", err, r)
				}
			}
		})
	}

	// The contract-overhead pair: the same exhaustive C5 sweep with the
	// per-state invariant calling the legacy Validity closure directly vs
	// routed through the descriptor's Contract.Safety surface (the bare
	// adapter Register synthesizes around the same properties). The pair
	// pins that the pluggable contract layer is free: one extra interface
	// call per state, identical verdicts, within noise.
	{
		d, err := protocol.Lookup("five")
		if err != nil {
			return err
		}
		coN := sweepN
		cog := graph.MustCycle(coN)
		mkFive := func(axs []int) (*sim.Engine[core.FiveVal], error) {
			return sim.NewEngine(cog, core.NewFiveNodes(axs))
		}
		for _, c := range []struct {
			name string
			inv  func(e *sim.Engine[core.FiveVal]) error
		}{
			{"check_contract_overhead_legacy", func(e *sim.Engine[core.FiveVal]) error { return d.Validity(cog, e.Result()) }},
			{"check_contract_overhead_contract", func(e *sim.Engine[core.FiveVal]) error { return d.Contract.Safety(cog, e.Result()) }},
		} {
			c := c
			add(c.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					r, err := model.SweepExplore(coN, mkFive, model.Options{SingletonsOnly: true, Symmetry: model.SymmetryAssignments}, c.inv)
					if err != nil || !r.AllOk {
						b.Fatalf("sweep failed: %v %v", err, r)
					}
				}
			})
		}
	}

	// The fingerprint primitives themselves.
	add("fingerprint_string", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		e.Step([]int{0, 1, 2})
		for i := 0; i < b.N; i++ {
			_ = e.Fingerprint()
		}
	})
	add("fingerprint_hash", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		e.Step([]int{0, 1, 2})
		for i := 0; i < b.N; i++ {
			_, _ = e.FingerprintHash128()
		}
	})

	// The engine hot path (warm Step, singleton activations).
	add("engine_step", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		subset := make([]int, 1)
		e.Step(subset)
		for i := 0; i < b.N; i++ {
			subset[0] = i % n
			e.Step(subset)
		}
	})

	// Large-cycle scenarios on the struct-of-arrays engine: six/five/fast
	// on C_10^5 (plus C_10^6 in full mode), once under the batched serial
	// round-robin schedule and once under the sharded parallel executor at
	// real core count, incremental safety checking on throughout. These are
	// single timed executions, not testing.Benchmark loops: one run already
	// performs millions of rounds, and the recorded quantity is throughput.
	bigNs := []int{100_000}
	if !quick {
		bigNs = append(bigNs, 1_000_000)
	}
	addBig := func(alg string, bound int, e *bigsim.Engine, sched string, workers int, secs float64) {
		s := e.Summarize()
		br := bigRun{
			Alg:          alg,
			N:            s.N,
			Sched:        sched,
			Workers:      workers,
			Steps:        s.Steps,
			Rounds:       s.Rounds,
			MaxRounds:    s.MaxRounds,
			Bound:        bound,
			Seconds:      secs,
			RoundsPerSec: float64(s.Rounds) / secs,
			BytesPerNode: s.BytesPerNode,
		}
		rep.BigRuns = append(rep.BigRuns, br)
		fmt.Printf("big %-5s n=%-8d %-16s %10.0f rounds/sec  %6.2fs  %2d bytes/node  max-rounds %d/%d\n",
			alg, s.N, sched, br.RoundsPerSec, secs, s.BytesPerNode, s.MaxRounds, bound)
	}
	bigBudget := runctl.Budget{Timeout: 300 * time.Second}
	for _, alg := range []string{"six", "five", "fast"} {
		d, err := protocol.Lookup(alg)
		if err != nil {
			return err
		}
		for _, bn := range bigNs {
			bxs := ids.MustGenerate(ids.Random, bn, 1)
			k, err := d.BigKernel(bxs)
			if err != nil {
				return err
			}
			e := bigsim.New(k)
			e.SetIncremental(true)

			start := time.Now()
			reason, err := e.RunBudget(nil, bigsim.NewRR(1), bigBudget)
			secs := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("big %s n=%d rr: %w", alg, bn, err)
			}
			if reason != runctl.StopNone {
				return fmt.Errorf("big %s n=%d rr stopped early: %s", alg, bn, reason)
			}
			if err := e.VerifyFull(); err != nil {
				return fmt.Errorf("big %s n=%d rr: %w", alg, bn, err)
			}
			addBig(alg, d.Bound(bn), e, "round-robin(1)", 1, secs)

			if err := e.Reset(bxs); err != nil {
				return err
			}
			e.SetIncremental(true)
			workers := runtime.NumCPU()
			atRealProcs(func() {
				start = time.Now()
				reason, err = e.RunSharded(nil, workers, bigBudget)
				secs = time.Since(start).Seconds()
			})
			if err != nil {
				return fmt.Errorf("big %s n=%d sharded: %w", alg, bn, err)
			}
			if reason != runctl.StopNone {
				return fmt.Errorf("big %s n=%d sharded stopped early: %s", alg, bn, reason)
			}
			if err := e.VerifyFull(); err != nil {
				return fmt.Errorf("big %s n=%d sharded: %w", alg, bn, err)
			}
			addBig(alg, d.Bound(bn), e, fmt.Sprintf("sharded-rr(%d)", workers), workers, secs)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	// Atomic replace: an interrupted or crashed bench must not truncate the
	// committed baseline.
	if err := atomicio.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
