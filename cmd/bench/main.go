// Command bench runs the repository's core benchmarks in-process and
// writes the results as JSON (BENCH_core.json), so perf baselines can be
// recorded and diffed without parsing `go test -bench` text output.
//
// Usage:
//
//	bench [-out BENCH_core.json] [-quick] [-cpuprofile FILE] [-memprofile FILE]
//
// The suite pairs each optimized path with its baseline so the file
// documents the speedups directly: the parallel experiment harness vs its
// serial setting, and the compact-fingerprint model checker vs the exact
// string-fingerprint tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"asynccycle/internal/core"
	"asynccycle/internal/expt"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/prof"
	"asynccycle/internal/sim"
)

type entry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output file")
	quick := flag.Bool("quick", false, "shrink workloads for a smoke run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	err = run(*out, *quick)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	n := 4096
	if quick {
		n = 512
	}
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 1)

	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op\n", name, rep.Benchmarks[len(rep.Benchmarks)-1].NsPerOp, r.AllocsPerOp())
	}

	// The tentpole pair #1: the experiment harness, serial vs parallel.
	// Tables are byte-identical between the two; only wall-clock differs.
	for _, c := range []struct {
		name    string
		workers int
	}{{"e2_table_serial", 1}, {"e2_table_parallel", 0}} {
		c := c
		add(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				expt.E2Alg2Linear(expt.Options{Quick: true, Seed: 1, Parallelism: c.workers})
			}
		})
	}

	// The tentpole pair #2: the model checker, exact string fingerprints vs
	// compact 128-bit hashes (identical state counts, fewer allocations).
	for _, c := range []struct {
		name string
		str  bool
	}{{"modelcheck_c4_string", true}, {"modelcheck_c4_hash", false}} {
		c := c
		add(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cg := graph.MustCycle(4)
			cxs := ids.MustGenerate(ids.Increasing, 4, 0)
			for i := 0; i < b.N; i++ {
				e, _ := sim.NewEngine(cg, core.NewFiveNodes(cxs))
				r := model.Explore(e, model.Options{SingletonsOnly: true, StringFingerprints: c.str}, nil)
				if !r.Ok() {
					b.Fatal("verification failed")
				}
			}
		})
	}

	// The symmetry-reduction pair: exhaustive identifier-assignment sweep
	// of Algorithm 2, unreduced vs quotiented by the dihedral group with
	// exact orbit weighting. Weighted counts are bit-identical; the reduced
	// sweep explores n!/(2n) orbit representatives instead of n!
	// assignments. Quick uses C4 (24 -> 3 runs), the full suite C5
	// (120 -> 12) — large enough that the reduced sweep clears the >= 3x
	// wall-clock bar recorded in EXPERIMENTS.md.
	sweepN := 5
	if quick {
		sweepN = 4
	}
	for _, c := range []struct {
		name string
		sym  model.Symmetry
	}{
		{fmt.Sprintf("sweep_c%d_off", sweepN), model.SymmetryOff},
		{fmt.Sprintf("sweep_c%d_assignments", sweepN), model.SymmetryAssignments},
	} {
		c := c
		add(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cg := graph.MustCycle(sweepN)
			mk := func(axs []int) (*sim.Engine[core.FiveVal], error) {
				return sim.NewEngine(cg, core.NewFiveNodes(axs))
			}
			for i := 0; i < b.N; i++ {
				r, err := model.SweepExplore(sweepN, mk, model.Options{SingletonsOnly: true, Symmetry: c.sym}, nil)
				if err != nil || !r.AllOk {
					b.Fatalf("sweep failed: %v %v", err, r)
				}
			}
		})
	}

	// The fingerprint primitives themselves.
	add("fingerprint_string", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		e.Step([]int{0, 1, 2})
		for i := 0; i < b.N; i++ {
			_ = e.Fingerprint()
		}
	})
	add("fingerprint_hash", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		e.Step([]int{0, 1, 2})
		for i := 0; i < b.N; i++ {
			_, _ = e.FingerprintHash128()
		}
	})

	// The engine hot path (warm Step, singleton activations).
	add("engine_step", func(b *testing.B) {
		b.ReportAllocs()
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		subset := make([]int, 1)
		e.Step(subset)
		for i := 0; i < b.N; i++ {
			subset[0] = i % n
			e.Step(subset)
		}
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
