package asynccycle

import (
	"time"

	"asynccycle/internal/schedule"
)

// Synchronous returns the lock-step scheduler: every working process is
// activated at every step.
func Synchronous() Scheduler { return schedule.Synchronous{} }

// RoundRobin returns a scheduler activating width working processes per
// step, cycling through process indices.
func RoundRobin(width int) Scheduler { return schedule.NewRoundRobin(width) }

// RandomSubset returns a scheduler that independently activates each
// working process with probability p at each step (at least one always
// moves).
func RandomSubset(p float64, seed int64) Scheduler { return schedule.NewRandomSubset(p, seed) }

// RandomOne returns a scheduler activating a single uniformly random
// working process per step.
func RandomOne(seed int64) Scheduler { return schedule.NewRandomOne(seed) }

// Alternating returns the two-phase scheduler: even-index processes on odd
// steps, odd-index processes on even steps.
func Alternating() Scheduler { return schedule.Alternating{} }

// Burst returns a scheduler giving each process k consecutive solo steps
// before moving on.
func Burst(k int) Scheduler { return schedule.NewBurst(k) }

// Sleep wraps inner so that the given processes are withheld until step
// wakeAt (modeling late risers; combine with Config.CrashAfter for
// permanent crashes).
func Sleep(asleep []int, wakeAt int, inner Scheduler) Scheduler {
	return schedule.NewSleep(asleep, wakeAt, inner)
}

// RecordingScheduler wraps another scheduler and captures the schedule it
// produces, so an interesting execution can be serialized (MarshalSchedule)
// and replayed exactly (Replay) — e.g. to pin a bug reproduction in a
// regression test.
type RecordingScheduler = schedule.Recording

// Record wraps inner in a RecordingScheduler.
func Record(inner Scheduler) *RecordingScheduler { return schedule.NewRecording(inner) }

// Replay returns a scheduler that plays back a recorded schedule verbatim;
// after the steps are exhausted, remaining processes are treated as
// crashed.
func Replay(steps [][]int) Scheduler { return schedule.NewReplay(steps) }

// MarshalSchedule serializes a recorded schedule as JSON.
func MarshalSchedule(steps [][]int) ([]byte, error) { return schedule.MarshalSteps(steps) }

// UnmarshalSchedule deserializes a schedule produced by MarshalSchedule.
func UnmarshalSchedule(data []byte) ([][]int, error) { return schedule.UnmarshalSteps(data) }

// durationFromNanos converts a nanosecond count to a time.Duration,
// clamping negatives to zero.
func durationFromNanos(ns int64) time.Duration {
	if ns < 0 {
		return 0
	}
	return time.Duration(ns)
}
