package asynccycle_test

import (
	"errors"
	"testing"

	"asynccycle"
)

// TestRunProtocolMatchesTypedHelpers pins the facade refactor: the typed
// helpers are thin wrappers, so running by name (including aliases) is
// step-for-step identical.
func TestRunProtocolMatchesTypedHelpers(t *testing.T) {
	xs := []int{7, 2, 9, 4, 11, 0}
	cfg := func() *asynccycle.Config {
		return &asynccycle.Config{Scheduler: asynccycle.RoundRobin(1), CrashAfter: map[int]int{2: 1}}
	}
	typed, err := asynccycle.FiveColorCycle(xs, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"five", "alg2", "FIVE"} {
		named, err := asynccycle.RunProtocol(name, xs, cfg())
		if err != nil {
			t.Fatalf("RunProtocol(%q): %v", name, err)
		}
		if named.Steps != typed.Steps {
			t.Errorf("RunProtocol(%q).Steps = %d, want %d", name, named.Steps, typed.Steps)
		}
		for i := range xs {
			if named.Outputs[i] != typed.Outputs[i] {
				t.Errorf("RunProtocol(%q).Outputs[%d] = %d, want %d", name, i, named.Outputs[i], typed.Outputs[i])
			}
		}
	}
}

// TestRunProtocolRegistryProtocols smoke-runs each non-cycle-coloring
// protocol through the generic facade on its own topology.
func TestRunProtocolRegistryProtocols(t *testing.T) {
	for _, c := range []struct {
		name string
		xs   []int
	}{
		{"mis-greedy", []int{3, 1, 4, 0, 2}},
		{"mis-impatient", []int{3, 1, 4, 0, 2}},
		{"renaming", []int{9, 5, 7, 1}},
		{"ssb-greedy", []int{3, 1, 4, 0, 2}},
		{"decoupled-three", []int{5, 0, 3, 2}},
		{"local-cv", []int{6, 2, 9, 1, 7}},
	} {
		res, err := asynccycle.RunProtocol(c.name, c.xs, nil)
		if err != nil {
			t.Errorf("RunProtocol(%q): %v", c.name, err)
			continue
		}
		if res.TerminatedCount() != len(c.xs) {
			t.Errorf("RunProtocol(%q): terminated=%d/%d under the synchronous scheduler", c.name, res.TerminatedCount(), len(c.xs))
		}
	}
}

func TestRunProtocolErrors(t *testing.T) {
	if _, err := asynccycle.RunProtocol("no-such", []int{1, 2, 3}, nil); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("unknown protocol: err = %v, want ErrBadInput", err)
	}
	if _, err := asynccycle.RunProtocol("five", []int{1, 1, 2}, nil); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("bad identifiers: err = %v, want ErrBadInput", err)
	}
	if _, err := asynccycle.RunProtocol("five", []int{1, 2, 3}, &asynccycle.Config{CrashAfter: map[int]int{9: 0}}); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("crash index out of range: err = %v, want ErrBadInput", err)
	}
	if _, err := asynccycle.RunProtocolConcurrent("local-cv", []int{6, 2, 9, 1, 7}, nil); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("local-cv has no concurrent runtime: err = %v, want ErrBadInput", err)
	}
}

// TestRunProtocolTopology: Config.Topology retargets onto a declared
// family through the facade, and refuses undeclared ones with ErrBadInput.
func TestRunProtocolTopology(t *testing.T) {
	xs := []int{7, 2, 9, 4, 11, 0, 5, 13, 1, 8}
	res, err := asynccycle.RunProtocol("dp1", xs, &asynccycle.Config{
		Topology:  "random:4:1",
		Scheduler: asynccycle.RandomSubset(0.5, 3),
	})
	if err != nil {
		t.Fatalf("dp1 on random:4:1: %v", err)
	}
	if res.TerminatedCount() != len(xs) {
		t.Fatalf("dp1 on random:4:1: terminated=%d/%d", res.TerminatedCount(), len(xs))
	}
	for i, out := range res.Outputs {
		if out < 0 || out > 4 {
			t.Errorf("output[%d] = %d outside the Δ+1 palette {0..4}", i, out)
		}
	}
	if _, err := asynccycle.RunProtocol("five", xs, &asynccycle.Config{Topology: "torus"}); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("five on torus: err = %v, want ErrBadInput", err)
	}
}

// TestProtocolsTable pins the public registry listing: names, order, and
// the capability surface the README documents.
func TestProtocolsTable(t *testing.T) {
	infos := asynccycle.Protocols()
	var names []string
	caps := map[string]string{}
	for _, in := range infos {
		names = append(names, in.Name)
		caps[in.Name] = in.Capabilities
	}
	want := []string{"six", "five", "fast", "dp1", "mis-greedy", "mis-impatient", "renaming", "ssb-greedy", "ssb-impatient", "decoupled-three", "local-cv"}
	if len(names) < len(want) {
		t.Fatalf("Protocols() lists %d protocols, want at least %d", len(names), len(want))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("Protocols()[%d] = %q, want %q (registration order is part of the contract)", i, names[i], w)
		}
	}
	if caps["five"] != "run,conc,check,worst,sweep,fuzz,big" {
		t.Errorf("five capabilities = %q", caps["five"])
	}
	if caps["local-cv"] != "run" {
		t.Errorf("local-cv capabilities = %q", caps["local-cv"])
	}
}
