package asynccycle_test

import (
	"math/rand"
	"testing"

	"asynccycle"
)

// Fuzz targets: run with `go test -fuzz=FuzzFiveColoring` (etc.) for
// coverage-guided exploration; the seed corpus below also runs on every
// plain `go test`, acting as an extra randomized regression layer.

// buildCycleIDs derives a valid identifier assignment from raw fuzz bytes:
// n ∈ [3, 40], identifiers distinct (position-salted).
func buildCycleIDs(rawN uint8, idSeed int64) (int, []int) {
	n := 3 + int(rawN)%38
	rng := rand.New(rand.NewSource(idSeed))
	perm := rng.Perm(4 * n)
	return n, perm[:n]
}

func pickScheduler(k uint8, seed int64) asynccycle.Scheduler {
	switch k % 6 {
	case 0:
		return asynccycle.Synchronous()
	case 1:
		return asynccycle.RoundRobin(1 + int(k)%4)
	case 2:
		return asynccycle.RandomSubset(0.35, seed)
	case 3:
		return asynccycle.RandomOne(seed)
	case 4:
		return asynccycle.Alternating()
	default:
		return asynccycle.Burst(1 + int(k)%5)
	}
}

func crashes(n int, mask uint32) map[int]int {
	out := map[int]int{}
	for i := 0; i < n && i < 32; i++ {
		if mask&(1<<i) != 0 {
			out[i] = int(mask>>uint(i%3)) % 4
		}
	}
	return out
}

func FuzzFiveColoring(f *testing.F) {
	f.Add(uint8(3), int64(1), uint8(0), uint32(0))
	f.Add(uint8(10), int64(7), uint8(2), uint32(0b1010))
	f.Add(uint8(40), int64(42), uint8(5), uint32(0xFFFF))
	f.Add(uint8(5), int64(-3), uint8(4), uint32(1))
	f.Fuzz(func(t *testing.T, rawN uint8, seed int64, schedKind uint8, crashMask uint32) {
		n, ids := buildCycleIDs(rawN, seed)
		res, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
			Scheduler:  pickScheduler(schedKind, seed),
			CrashAfter: crashes(n, crashMask),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
			t.Fatal(err)
		}
		if err := asynccycle.VerifyPalette(res, 5); err != nil {
			t.Fatal(err)
		}
		if err := asynccycle.VerifySurvivorsTerminated(res); err != nil {
			t.Fatal(err)
		}
		// Theorem 3.11's linear wait-freedom bound.
		if bound := 3*n + 8; res.MaxActivations() > bound {
			t.Fatalf("n=%d: %d rounds exceed the 3n+8 bound %d", n, res.MaxActivations(), bound)
		}
	})
}

func FuzzFastColoring(f *testing.F) {
	f.Add(uint8(3), int64(1), uint8(0), uint32(0))
	f.Add(uint8(33), int64(9), uint8(1), uint32(0b11))
	f.Add(uint8(40), int64(2022), uint8(3), uint32(0))
	f.Fuzz(func(t *testing.T, rawN uint8, seed int64, schedKind uint8, crashMask uint32) {
		n, ids := buildCycleIDs(rawN, seed)
		res, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{
			Scheduler:  pickScheduler(schedKind, seed),
			CrashAfter: crashes(n, crashMask),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
			t.Fatal(err)
		}
		if err := asynccycle.VerifyPalette(res, 5); err != nil {
			t.Fatal(err)
		}
		if err := asynccycle.VerifySurvivorsTerminated(res); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzSixColoring(f *testing.F) {
	f.Add(uint8(4), int64(11), uint8(2), uint32(4))
	f.Add(uint8(17), int64(5), uint8(0), uint32(0))
	f.Fuzz(func(t *testing.T, rawN uint8, seed int64, schedKind uint8, crashMask uint32) {
		n, ids := buildCycleIDs(rawN, seed)
		res, err := asynccycle.SixColorCycle(ids, &asynccycle.Config{
			Scheduler:  pickScheduler(schedKind, seed),
			CrashAfter: crashes(n, crashMask),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
			t.Fatal(err)
		}
		if err := asynccycle.VerifyPairPalette(res, 2); err != nil {
			t.Fatal(err)
		}
		// Theorem 3.1's exact wait-freedom bound: no process performs more
		// than ⌊3n/2⌋+4 rounds under any schedule.
		if bound := 3*n/2 + 4; res.MaxActivations() > bound {
			t.Fatalf("n=%d: %d rounds exceed the ⌊3n/2⌋+4 bound %d", n, res.MaxActivations(), bound)
		}
	})
}

// buildRawSchedule turns arbitrary fuzz bytes into a schedule: byte values
// split steps and contribute members, including duplicates, out-of-range
// indices, and empty steps — all of which the engine and the serialization
// layer must handle.
func buildRawSchedule(n int, raw []byte) [][]int {
	steps := [][]int{{}}
	for _, b := range raw {
		if b%16 == 15 {
			steps = append(steps, []int{})
			continue
		}
		last := len(steps) - 1
		steps[last] = append(steps[last], int(b)%(n+2)-1)
	}
	return steps
}

// FuzzScheduleRoundTrip: any schedule — including hostile ones with empty
// steps, duplicate and out-of-range members — must survive
// Marshal → Unmarshal bit-exactly, and two replays of the round-tripped
// schedule on identical instances must produce identical executions.
func FuzzScheduleRoundTrip(f *testing.F) {
	f.Add(uint8(5), int64(1), []byte{0, 1, 15, 2, 3})
	f.Add(uint8(12), int64(7), []byte{255, 14, 15, 15, 9, 0, 0, 31})
	f.Add(uint8(3), int64(-2), []byte{})
	f.Fuzz(func(t *testing.T, rawN uint8, seed int64, raw []byte) {
		n, ids := buildCycleIDs(rawN, seed)
		steps := buildRawSchedule(n, raw)

		data, err := asynccycle.MarshalSchedule(steps)
		if err != nil {
			t.Fatal(err)
		}
		back, err := asynccycle.UnmarshalSchedule(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(steps) {
			t.Fatalf("round trip changed step count: %d vs %d", len(back), len(steps))
		}
		for i := range steps {
			if len(back[i]) != len(steps[i]) {
				t.Fatalf("step %d: %v vs %v", i, back[i], steps[i])
			}
			for j := range steps[i] {
				if back[i][j] != steps[i][j] {
					t.Fatalf("step %d: %v vs %v", i, back[i], steps[i])
				}
			}
		}

		res1, err1 := asynccycle.FiveColorCycle(ids, &asynccycle.Config{Scheduler: asynccycle.Replay(steps)})
		res2, err2 := asynccycle.FiveColorCycle(ids, &asynccycle.Config{Scheduler: asynccycle.Replay(back)})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("replay errors diverge: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		for i := range res1.Outputs {
			if res1.Outputs[i] != res2.Outputs[i] || res1.Activations[i] != res2.Activations[i] ||
				res1.Done[i] != res2.Done[i] || res1.Crashed[i] != res2.Crashed[i] {
				t.Fatalf("round-tripped replay diverged at node %d", i)
			}
		}
		if err := asynccycle.VerifyCycleColoring(n, res1); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzReplayDeterminism records a random execution and replays it,
// demanding bit-identical results — the replay infrastructure must be a
// faithful serialization of the adversary.
func FuzzReplayDeterminism(f *testing.F) {
	f.Add(uint8(9), int64(3), uint8(2))
	f.Add(uint8(20), int64(-8), uint8(5))
	f.Fuzz(func(t *testing.T, rawN uint8, seed int64, schedKind uint8) {
		_, ids := buildCycleIDs(rawN, seed)
		rec := asynccycle.Record(pickScheduler(schedKind, seed))
		res1, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{Scheduler: rec})
		if err != nil {
			t.Fatal(err)
		}
		data, err := asynccycle.MarshalSchedule(rec.Steps())
		if err != nil {
			t.Fatal(err)
		}
		steps, err := asynccycle.UnmarshalSchedule(data)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{Scheduler: asynccycle.Replay(steps)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res1.Outputs {
			if res1.Outputs[i] != res2.Outputs[i] || res1.Activations[i] != res2.Activations[i] {
				t.Fatalf("replay diverged at node %d", i)
			}
		}
	})
}
