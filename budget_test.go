package asynccycle_test

import (
	"context"
	"errors"
	"testing"

	"asynccycle"
)

// A cancelled context stops a deterministic run between steps: the error
// wraps ErrBudget and the partial Result is still a valid prefix.
func TestConfigContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := asynccycle.FastColorCycle(asynccycle.GenerateIDs(50, 1), &asynccycle.Config{Context: ctx})
	if !errors.Is(err, asynccycle.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res.TerminatedCount() != 0 {
		t.Errorf("pre-cancelled run terminated %d processes", res.TerminatedCount())
	}
}

// An activation budget stops the run once the total round count reaches
// the bound; the partial coloring it returns is still proper.
func TestConfigBudgetActivations(t *testing.T) {
	n := 50
	res, err := asynccycle.FiveColorCycle(asynccycle.GenerateIDs(n, 1), &asynccycle.Config{
		Scheduler: asynccycle.RoundRobin(1),
		Budget:    asynccycle.Budget{MaxActivations: 10},
	})
	if !errors.Is(err, asynccycle.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if res.TerminatedCount() >= n {
		t.Errorf("budgeted run terminated everyone (%d/%d)", res.TerminatedCount(), n)
	}
}

// A generous budget changes nothing: the run completes with a nil error
// and the same result as the un-budgeted path.
func TestConfigBudgetGenerous(t *testing.T) {
	xs := asynccycle.GenerateIDs(30, 3)
	base, err := asynccycle.FastColorCycle(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := asynccycle.FastColorCycle(xs, &asynccycle.Config{
		Context: context.Background(),
		Budget:  asynccycle.Budget{MaxActivations: 1 << 20},
	})
	if err != nil {
		t.Fatalf("generous budget tripped: %v", err)
	}
	for i := range base.Outputs {
		if base.Outputs[i] != budgeted.Outputs[i] {
			t.Fatalf("output %d differs: %d vs %d", i, base.Outputs[i], budgeted.Outputs[i])
		}
	}
}

// The concurrent runtime honors ConcurrentConfig.Context, reporting the
// cancellation through the same ErrBudget sentinel.
func TestConcurrentConfigContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := asynccycle.FastColorCycleConcurrent(asynccycle.GenerateIDs(20, 1), &asynccycle.ConcurrentConfig{
		Context: ctx,
		Yield:   true,
	})
	if !errors.Is(err, asynccycle.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
