package asynccycle_test

import (
	"errors"
	"testing"

	"asynccycle"
)

func incIDs(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i + 1
	}
	return xs
}

func TestFiveColorCycleDefaults(t *testing.T) {
	n := 50
	res, err := asynccycle.FiveColorCycle(asynccycle.GenerateIDs(n, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyPalette(res, 5); err != nil {
		t.Error(err)
	}
	if res.TerminatedCount() != n {
		t.Errorf("terminated %d/%d", res.TerminatedCount(), n)
	}
}

func TestFastColorCycleAllSchedulers(t *testing.T) {
	n := 40
	ids := asynccycle.GenerateIDs(n, 2)
	schedulers := []asynccycle.Scheduler{
		asynccycle.Synchronous(),
		asynccycle.RoundRobin(1),
		asynccycle.RoundRobin(5),
		asynccycle.RandomSubset(0.3, 3),
		asynccycle.RandomOne(4),
		asynccycle.Alternating(),
		asynccycle.Burst(2),
		asynccycle.Sleep([]int{0, 1}, 50, asynccycle.Synchronous()),
	}
	for _, s := range schedulers {
		res, err := asynccycle.FastColorCycle(ids, &asynccycle.Config{Scheduler: s})
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
			t.Errorf("%T: %v", s, err)
		}
		if err := asynccycle.VerifyPalette(res, 5); err != nil {
			t.Errorf("%T: %v", s, err)
		}
	}
}

func TestSixColorCyclePairs(t *testing.T) {
	n := 30
	res, err := asynccycle.SixColorCycle(asynccycle.GenerateIDs(n, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyPairPalette(res, 2); err != nil {
		t.Error(err)
	}
	for i, out := range res.Outputs {
		a, b := asynccycle.DecodePairColor(out)
		if a+b > 2 || a < 0 || b < 0 {
			t.Errorf("node %d: pair (%d,%d) outside palette", i, a, b)
		}
	}
	if asynccycle.PairPaletteSize(2) != 6 {
		t.Error("cycle pair palette should have 6 colors")
	}
}

func TestColorGraphLadder(t *testing.T) {
	// 2×k circular ladder, Δ=3.
	k := 10
	n := 2 * k
	adj := make([][]int, n)
	for i := 0; i < k; i++ {
		adj[i] = append(adj[i], (i+1)%k, (i+k-1)%k, k+i)
		adj[k+i] = append(adj[k+i], k+(i+1)%k, k+(i+k-1)%k, i)
	}
	res, err := asynccycle.ColorGraph(adj, asynccycle.GenerateIDs(n, 3), &asynccycle.Config{
		Scheduler: asynccycle.RandomOne(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyGraphColoring(adj, res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyPairPalette(res, 3); err != nil {
		t.Error(err)
	}
}

func TestInputValidation(t *testing.T) {
	check := func(name string, _ asynccycle.Result, err error) {
		if !errors.Is(err, asynccycle.ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", name, err)
		}
	}
	r, err := asynccycle.FiveColorCycle([]int{1, 2}, nil)
	check("short cycle", r, err)
	r, err = asynccycle.FiveColorCycle([]int{1, 2, 2}, nil)
	check("adjacent equal", r, err)
	r, err = asynccycle.FastColorCycle([]int{1, -2, 3}, nil)
	check("negative id", r, err)
	r, err = asynccycle.SixColorCycle([]int{7, 8, 7}, nil)
	check("wraparound equal", r, err)
	r, err = asynccycle.ColorGraph([][]int{{1}, {0}}, []int{5}, nil)
	check("id count mismatch", r, err)
	r, err = asynccycle.ColorGraph([][]int{{1}, {0}}, []int{5, 5}, nil)
	check("equal across edge", r, err)
	r, err = asynccycle.ColorGraph([][]int{{0}}, []int{5}, nil)
	check("self loop", r, err)
	r, err = asynccycle.FiveColorCycle(incIDs(5), &asynccycle.Config{CrashAfter: map[int]int{9: 1}})
	check("crash index out of range", r, err)
}

func TestCrashConfig(t *testing.T) {
	n := 20
	res, err := asynccycle.FiveColorCycle(asynccycle.GenerateIDs(n, 9), &asynccycle.Config{
		Scheduler:  asynccycle.RandomOne(2),
		CrashAfter: map[int]int{0: 0, 5: 1, 10: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Done[0] {
		t.Error("node 0 (crash at birth) should be crashed, not terminated")
	}
	// Nodes with a small round budget either terminated within it or
	// crashed — never kept running past it.
	for _, i := range []int{5, 10} {
		if !res.Crashed[i] && !res.Done[i] {
			t.Errorf("node %d neither crashed nor terminated", i)
		}
		if budget := map[int]int{5: 1, 10: 2}[i]; res.Activations[i] > budget {
			t.Errorf("node %d performed %d rounds past its budget %d", i, res.Activations[i], budget)
		}
	}
	if err := asynccycle.VerifySurvivorsTerminated(res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}
}

func TestConcurrentVariants(t *testing.T) {
	n := 60
	ids := asynccycle.GenerateIDs(n, 4)
	cfg := &asynccycle.ConcurrentConfig{Yield: true, Seed: 1}

	res, err := asynccycle.FiveColorCycleConcurrent(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}

	res, err = asynccycle.FastColorCycleConcurrent(ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyPalette(res, 5); err != nil {
		t.Error(err)
	}

	res, err = asynccycle.SixColorCycleConcurrent(ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(n, res); err != nil {
		t.Error(err)
	}
	if err := asynccycle.VerifyPairPalette(res, 2); err != nil {
		t.Error(err)
	}
}

func TestConcurrentValidation(t *testing.T) {
	if _, err := asynccycle.FastColorCycleConcurrent([]int{1, 2}, nil); !errors.Is(err, asynccycle.ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

// TestF1LivelockWitness is the regression test for repository finding F1:
// under the paper-literal simultaneous-round semantics, a two-phase
// lockstep schedule drives Algorithm 2 on C5 into a period-2 livelock
// (step limit exceeded), while the same schedule under the standard
// interleaved semantics terminates quickly.
//
// The livelock needs the odd-index class to move first. Alternating now
// (correctly, per its documentation) starts with the even class, so the
// witness phase-shifts it by one step: a Sleep wrapper withholds the even
// class on step 1.
func TestF1LivelockWitness(t *testing.T) {
	ids := incIDs(5)
	oddFirst := func() asynccycle.Scheduler {
		return asynccycle.Sleep([]int{0, 2, 4}, 2, asynccycle.Alternating())
	}

	_, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler: oddFirst(),
		Mode:      asynccycle.ModeSimultaneous,
		MaxSteps:  5_000,
	})
	if !errors.Is(err, asynccycle.ErrStepLimit) {
		t.Errorf("simultaneous odd-first alternation on C5: err = %v, want ErrStepLimit (livelock)", err)
	}

	res, err := asynccycle.FiveColorCycle(ids, &asynccycle.Config{
		Scheduler: oddFirst(),
		Mode:      asynccycle.ModeInterleaved,
		MaxSteps:  5_000,
	})
	if err != nil {
		t.Fatalf("interleaved odd-first alternation on C5: %v", err)
	}
	if res.TerminatedCount() != 5 {
		t.Errorf("interleaved: %d/5 terminated", res.TerminatedCount())
	}
}

func TestGenerateIDs(t *testing.T) {
	ids := asynccycle.GenerateIDs(100, 7)
	seen := map[int]bool{}
	for _, x := range ids {
		if x < 0 || seen[x] {
			t.Fatalf("bad id set: %v", ids)
		}
		seen[x] = true
	}
	again := asynccycle.GenerateIDs(100, 7)
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatal("GenerateIDs not deterministic per seed")
		}
	}
}

func TestVerifyHelpersRejectBadInput(t *testing.T) {
	res, err := asynccycle.FiveColorCycle(incIDs(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asynccycle.VerifyCycleColoring(2, res); err == nil {
		t.Error("VerifyCycleColoring accepted n=2")
	}
	if err := asynccycle.VerifyGraphColoring([][]int{{0}}, res); err == nil {
		t.Error("VerifyGraphColoring accepted self-loop")
	}
	// Wrong n (mismatched result size) must fail.
	if err := asynccycle.VerifyCycleColoring(6, res); err == nil {
		t.Error("VerifyCycleColoring accepted size mismatch")
	}
}

// TestREADMEQuickstartShape keeps the README example honest: n=1000 under
// the random scheduler finishes with everyone colored in at most a handful
// of rounds.
func TestREADMEQuickstartShape(t *testing.T) {
	n := 1000
	res, err := asynccycle.FastColorCycle(asynccycle.GenerateIDs(n, 2022), &asynccycle.Config{
		Scheduler: asynccycle.RandomSubset(0.3, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminatedCount() != n {
		t.Fatalf("terminated %d/%d", res.TerminatedCount(), n)
	}
	if res.MaxActivations() > 25 {
		t.Errorf("max rounds %d; expected O(log* n) ≈ single digits", res.MaxActivations())
	}
}
