// Benchmarks regenerating every experiment of DESIGN.md §3 — one bench per
// table (BenchmarkE1…BenchmarkE13, BenchmarkF1) plus micro-benchmarks of
// the hot paths. The experiment benches print their table once (the same
// rows recorded in EXPERIMENTS.md) and then measure the cost of
// regenerating it.
//
// Run with:
//
//	go test -bench=. -benchmem
package asynccycle_test

import (
	"sync"
	"testing"

	"asynccycle"
	"asynccycle/internal/conc"
	"asynccycle/internal/core"
	"asynccycle/internal/cv"
	"asynccycle/internal/expt"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
	"asynccycle/internal/model"
	"asynccycle/internal/schedule"
	"asynccycle/internal/sim"
)

// benchTable runs one experiment per iteration, printing its rows once so
// the bench output doubles as the reproduction artifact.
func benchTable(b *testing.B, run func(expt.Options) *expt.Table) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		t := run(expt.Options{Quick: true, Seed: int64(i + 1)})
		once.Do(func() { b.Log("\n" + t.String()) })
	}
}

func BenchmarkE1Alg1Termination(b *testing.B)  { benchTable(b, expt.E1Alg1Termination) }
func BenchmarkE2Alg2Linear(b *testing.B)       { benchTable(b, expt.E2Alg2Linear) }
func BenchmarkE3Alg3LogStar(b *testing.B)      { benchTable(b, expt.E3Alg3LogStar) }
func BenchmarkE4Crossover(b *testing.B)        { benchTable(b, expt.E4Crossover) }
func BenchmarkE5ColeVishkin(b *testing.B)      { benchTable(b, expt.E5ColeVishkin) }
func BenchmarkE6CrashTolerance(b *testing.B)   { benchTable(b, expt.E6CrashTolerance) }
func BenchmarkE7MISImpossibility(b *testing.B) { benchTable(b, expt.E7MISImpossibility) }
func BenchmarkE8PaletteTightness(b *testing.B) { benchTable(b, expt.E8PaletteTightness) }
func BenchmarkE9GeneralGraphs(b *testing.B)    { benchTable(b, expt.E9GeneralGraphs) }
func BenchmarkE10SyncBaseline(b *testing.B)    { benchTable(b, expt.E10SyncBaseline) }
func BenchmarkE11Renaming(b *testing.B)        { benchTable(b, expt.E11Renaming) }
func BenchmarkE12IdentifierInvariant(b *testing.B) {
	benchTable(b, expt.E12IdentifierInvariant)
}
func BenchmarkE13Concurrent(b *testing.B)      { benchTable(b, expt.E13Concurrent) }
func BenchmarkE14Decoupled(b *testing.B)       { benchTable(b, expt.E14Decoupled) }
func BenchmarkE15SSBReduction(b *testing.B)    { benchTable(b, expt.E15SSBReduction) }
func BenchmarkE16ProgressClasses(b *testing.B) { benchTable(b, expt.E16ProgressClasses) }
func BenchmarkE17Ablations(b *testing.B)       { benchTable(b, expt.E17Ablations) }
func BenchmarkF1Livelock(b *testing.B)         { benchTable(b, expt.F1Livelock) }

// BenchmarkE2Alg2LinearSerial pins Parallelism to 1 — the baseline for the
// default BenchmarkE2Alg2Linear, which fans sweep cells across GOMAXPROCS
// workers. The two produce byte-identical tables; only wall-clock differs.
func BenchmarkE2Alg2LinearSerial(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		t := expt.E2Alg2Linear(expt.Options{Quick: true, Seed: int64(i + 1), Parallelism: 1})
		once.Do(func() { b.Log("\n" + t.String()) })
	}
}

// --- micro-benchmarks of the primitives the experiments are built on ----

// BenchmarkEngineRound measures one engine time step (write + local
// immediate snapshot + state update) per node at n=1024 under the
// synchronous schedule, Algorithm 3 payload.
func BenchmarkEngineRound(b *testing.B) {
	n := 1024
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 1)
	e, err := sim.NewEngine(g, core.NewFastNodes(xs))
	if err != nil {
		b.Fatal(err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.AllSettled() {
			b.StopTimer()
			e, _ = sim.NewEngine(g, core.NewFastNodes(xs))
			b.StartTimer()
		}
		e.Step(all)
	}
}

// BenchmarkFastFullRun measures a complete Algorithm 3 execution
// (n = 4096, synchronous, worst-case increasing identifiers).
func BenchmarkFastFullRun(b *testing.B) {
	n := 4096
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFastNodes(xs))
		if _, err := e.Run(schedule.Synchronous{}, 100*n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFiveFullRun is the Algorithm 2 counterpart of
// BenchmarkFastFullRun — the Θ(n) vs O(log* n) gap shows up directly in
// ns/op.
func BenchmarkFiveFullRun(b *testing.B) {
	n := 4096
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Increasing, n, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		if _, err := e.Run(schedule.Synchronous{}, 100*n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentRun measures the goroutine runtime end to end
// (n = 512, Algorithm 3).
func BenchmarkConcurrentRun(b *testing.B) {
	n := 512
	g := graph.MustCycle(n)
	xs := ids.MustGenerate(ids.Random, n, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conc.Run(g, core.NewFastNodes(xs), conc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeFastColorCycle measures the public API path.
func BenchmarkFacadeFastColorCycle(b *testing.B) {
	xs := asynccycle.GenerateIDs(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asynccycle.FastColorCycle(xs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCVReduction measures the Cole–Vishkin reduction function.
func BenchmarkCVReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = cv.F(i|1<<40, (i>>1)|1<<39)
	}
}

// BenchmarkModelCheckC4 measures exhaustive verification throughput: one
// full exploration of Algorithm 2 on C4 over every interleaved schedule
// (~400 configurations) per iteration.
func BenchmarkModelCheckC4(b *testing.B) {
	g := graph.MustCycle(4)
	xs := ids.MustGenerate(ids.Increasing, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true}, nil)
		if !rep.Ok() {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkModelCheckC4StringFP is BenchmarkModelCheckC4 with the exact
// string-fingerprint state tables the checker used before compact hashing —
// the allocs/op gap between the two is the win of the 128-bit tables.
func BenchmarkModelCheckC4StringFP(b *testing.B) {
	g := graph.MustCycle(4)
	xs := ids.MustGenerate(ids.Increasing, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true, StringFingerprints: true}, nil)
		if !rep.Ok() {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkModelCheckC4Workers measures the parallel first-level frontier
// on the same instance (identical States/Terminal counts as the serial
// exploration; workers duplicate shared substates by design).
func BenchmarkModelCheckC4Workers(b *testing.B) {
	g := graph.MustCycle(4)
	xs := ids.MustGenerate(ids.Increasing, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		rep := model.Explore(e, model.Options{SingletonsOnly: true, Workers: 4}, nil)
		if !rep.Ok() {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkFingerprintString and BenchmarkFingerprintHash compare the two
// configuration-identity encodings on a warmed n=1024 Algorithm 3 engine.
func BenchmarkFingerprintString(b *testing.B) {
	n := 1024
	e, _ := sim.NewEngine(graph.MustCycle(n), core.NewFastNodes(ids.MustGenerate(ids.Random, n, 1)))
	e.Step([]int{0, 1, 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Fingerprint()
	}
}

func BenchmarkFingerprintHash(b *testing.B) {
	n := 1024
	e, _ := sim.NewEngine(graph.MustCycle(n), core.NewFastNodes(ids.MustGenerate(ids.Random, n, 1)))
	e.Step([]int{0, 1, 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = e.FingerprintHash128()
	}
}

// BenchmarkWorstActivationsC4 measures the exact worst-case longest-path
// analysis on the same instance.
func BenchmarkWorstActivationsC4(b *testing.B) {
	g := graph.MustCycle(4)
	xs := ids.MustGenerate(ids.Increasing, 4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := sim.NewEngine(g, core.NewFiveNodes(xs))
		if _, ok, _ := model.WorstActivations(e, model.Options{SingletonsOnly: true}); !ok {
			b.Fatal("analysis inconclusive")
		}
	}
}
