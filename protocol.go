package asynccycle

// Generic protocol entry points: every algorithm registered in
// internal/protocol is runnable by name through one facade surface. The
// typed helpers (FiveColorCycle, …) are thin wrappers over RunProtocol
// with their historical names pinned.

import (
	"errors"
	"fmt"

	"asynccycle/internal/conc"
	"asynccycle/internal/protocol"
	"asynccycle/internal/runctl"
)

// ProtocolInfo describes one registered protocol: its registry name and
// aliases, the problem it solves, the graph family it runs on, its output
// palette, its per-process round bound (empty when the protocol is not
// wait-free), and the comma-separated capability set
// ("run,conc,check,worst,sweep,fuzz" for the fully supported algorithms).
type ProtocolInfo struct {
	Name         string
	Aliases      []string
	Problem      string
	Graph        string
	Palette      string
	Bound        string
	Expectation  string
	Capabilities string
}

// Protocols lists every registered protocol in registration order.
func Protocols() []ProtocolInfo {
	ds := protocol.All()
	out := make([]ProtocolInfo, len(ds))
	for i, d := range ds {
		out[i] = ProtocolInfo{
			Name:         d.Name,
			Aliases:      append([]string(nil), d.Aliases...),
			Problem:      d.Problem,
			Graph:        d.TopologyName,
			Palette:      d.Palette,
			Bound:        d.BoundDesc,
			Expectation:  d.Expectation,
			Capabilities: d.Capabilities(),
		}
	}
	return out
}

// lookupProtocol resolves a registry name or alias, folding the failure
// into the facade's input-error sentinel.
func lookupProtocol(name string) (*protocol.Descriptor, error) {
	d, err := protocol.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return d, nil
}

// validateProtocolInput applies the protocol's identifier precondition and
// the facade's crash-plan validation, both under ErrBadInput.
func validateProtocolInput(d *protocol.Descriptor, xs []int, crashes map[int]int) error {
	if d.ValidateIDs != nil {
		if err := d.ValidateIDs(xs); err != nil {
			return fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	for i := range crashes {
		if i < 0 || i >= len(xs) {
			return fmt.Errorf("%w: crash index %d out of range", ErrBadInput, i)
		}
	}
	return nil
}

// RunProtocol runs the named protocol (any registry name or alias listed
// by Protocols) on the identifier vector xs under cfg, with the same
// semantics as the typed helpers: deterministic given the scheduler,
// ErrBadInput for precondition violations, ErrStepLimit (wrapped) when the
// step budget runs out, and ErrBudget (wrapped) with a valid partial
// Result when Config.Context or Config.Budget stops the run early.
func RunProtocol(name string, xs []int, cfg *Config) (Result, error) {
	d, err := lookupProtocol(name)
	if err != nil {
		return Result{}, err
	}
	if cfg != nil && cfg.Topology != "" {
		// Retarget before validation: the retargeted descriptor carries the
		// identifier precondition that is actually true on the new family.
		if d, err = protocol.WithTopology(d, cfg.Topology); err != nil {
			return Result{}, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	if err := validateProtocolInput(d, xs, cfg.crashes()); err != nil {
		return Result{}, err
	}
	var mode Mode
	if cfg != nil {
		mode = cfg.Mode
	}
	if len(d.Modes) > 0 && !d.SupportsMode(mode) {
		return Result{}, fmt.Errorf("%w: protocol %q does not support %s semantics", ErrBadInput, name, mode)
	}
	o := protocol.RunOptions{
		Scheduler: cfg.scheduler(),
		Mode:      mode,
		Crashes:   cfg.crashes(),
		MaxSteps:  cfg.maxSteps(len(xs)),
	}
	if cfg != nil {
		o.Context = cfg.Context
		o.Budget = cfg.Budget
	}
	res, reason, err := d.Run(xs, o)
	if err != nil {
		return res, err
	}
	if reason != runctl.StopNone {
		return res, fmt.Errorf("%w: %s", ErrBudget, reason)
	}
	return res, nil
}

// RunProtocolConcurrent runs the named protocol with one goroutine per
// process. Protocols without a concurrent runtime (decoupled-three,
// local-cv) return ErrBadInput.
func RunProtocolConcurrent(name string, xs []int, cfg *ConcurrentConfig) (Result, error) {
	d, err := lookupProtocol(name)
	if err != nil {
		return Result{}, err
	}
	// Crash indices are not range-checked here: the goroutine runtime has
	// always ignored out-of-range keys, and the typed Concurrent helpers
	// preserve that behavior.
	if err := validateProtocolInput(d, xs, nil); err != nil {
		return Result{}, err
	}
	if d.RunConc == nil {
		return Result{}, fmt.Errorf("%w: protocol %q has no concurrent runtime", ErrBadInput, name)
	}
	res, err := d.RunConc(xs, cfg.options())
	if errors.Is(err, conc.ErrCancelled) {
		return res, fmt.Errorf("%w: %v", ErrBudget, err)
	}
	return res, err
}

func (c *Config) crashes() map[int]int {
	if c == nil {
		return nil
	}
	return c.CrashAfter
}
