package asynccycle

import (
	"asynccycle/internal/check"
	"asynccycle/internal/graph"
	"asynccycle/internal/ids"
)

// VerifyCycleColoring checks that a Result from one of the cycle-coloring
// runs properly colors the cycle C_n induced by its terminated processes.
// It returns nil on success.
func VerifyCycleColoring(n int, r Result) error {
	g, err := graph.Cycle(n)
	if err != nil {
		return err
	}
	return check.ProperColoring(g, r)
}

// VerifyGraphColoring checks that a Result from ColorGraph properly colors
// the subgraph induced by its terminated processes.
func VerifyGraphColoring(adj [][]int, r Result) error {
	g, err := graph.New("user", adj)
	if err != nil {
		return err
	}
	return check.ProperColoring(g, r)
}

// VerifyPalette checks that every terminated process output a color in
// {0, …, k−1} (use k = 5 for FiveColorCycle and FastColorCycle).
func VerifyPalette(r Result, k int) error { return check.PaletteRange(r, k) }

// VerifyPairPalette checks that every terminated process of SixColorCycle
// or ColorGraph output an encoded pair (a, b) with a+b ≤ maxDeg (use 2 for
// the cycle).
func VerifyPairPalette(r Result, maxDeg int) error { return check.PairPalette(r, maxDeg) }

// VerifySurvivorsTerminated checks that every non-crashed process
// terminated with an output — the fault-tolerance guarantee.
func VerifySurvivorsTerminated(r Result) error { return check.SurvivorsTerminated(r) }

// GenerateIDs produces n distinct identifiers from [0, n²) using the given
// seed — a convenient poly(n)-range input for the coloring runs.
func GenerateIDs(n int, seed int64) []int { return ids.RandomIDs(n, seed) }
